// Command pnnquery generates an uncertain trajectory database and runs one
// probabilistic nearest-neighbor query against it, printing results and
// filter statistics. It is a scriptable front door to the library for
// exploration and regression comparison.
//
// Usage:
//
//	pnnquery -dataset synthetic -objects 1000 -semantics forall -tau 0.3
//	pnnquery -dataset taxi -objects 500 -semantics cnn -tau 0.5 -ts 120 -te 130
//	pnnquery -semantics exists -k 2
package main

import (
	"flag"
	"fmt"
	"os"

	"pnn"
)

func main() {
	var (
		dataset   = flag.String("dataset", "synthetic", "synthetic | taxi")
		states    = flag.Int("states", 10000, "number of network states")
		objects   = flag.Int("objects", 1000, "number of uncertain objects")
		lifetime  = flag.Int("lifetime", 100, "object lifetime in tics")
		horizon   = flag.Int("horizon", 1000, "database time horizon")
		obsEvery  = flag.Int("obs", 10, "tics between observations")
		samples   = flag.Int("samples", 10000, "sampled worlds per query")
		semantics = flag.String("semantics", "forall", "forall | exists | cnn")
		k         = flag.Int("k", 1, "k for kNN semantics (forall/exists)")
		tau       = flag.Float64("tau", 0.1, "probability threshold τ")
		ts        = flag.Int("ts", -1, "query interval start (-1: auto)")
		te        = flag.Int("te", -1, "query interval end (-1: ts+9)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var (
		net *pnn.Network
		db  *pnn.DB
		err error
	)
	switch *dataset {
	case "synthetic":
		net, db, err = pnn.SyntheticDataset(*states, 8, *objects, *lifetime, *horizon, *obsEvery, *seed)
	case "taxi":
		net, db, err = pnn.TaxiDataset(*states, *objects, *lifetime, *horizon, *obsEvery, *seed)
	default:
		fmt.Fprintf(os.Stderr, "pnnquery: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	fatal(err)

	proc, err := db.Build(*samples)
	fatal(err)

	// Query: a uniformly random state, interval defaulting to the middle
	// of the horizon.
	qs := int(uint64(*seed*2654435761) % uint64(net.NumStates()))
	if *ts < 0 {
		*ts = *horizon / 2
	}
	if *te < 0 {
		*te = *ts + 9
	}
	q := pnn.AtState(net, qs)
	fmt.Printf("dataset=%s |D|=%d states=%d  query state %d %v  T=[%d,%d]  τ=%.2f\n\n",
		*dataset, db.Len(), net.NumStates(), qs, net.StatePoint(qs), *ts, *te, *tau)

	switch *semantics {
	case "forall", "exists":
		var res []pnn.Result
		var stats pnn.Stats
		if *semantics == "forall" {
			res, stats, err = proc.ForAllKNN(q, *ts, *te, *k, *tau, *seed)
		} else {
			res, stats, err = proc.ExistsKNN(q, *ts, *te, *k, *tau, *seed)
		}
		fatal(err)
		fmt.Printf("filter: %d candidates, %d influencers; %d worlds sampled\n",
			stats.Candidates, stats.Influencers, stats.Worlds)
		fmt.Printf("±%.3f at 95%% confidence (Hoeffding)\n\n", pnn.SampleBound(*samples, 0.05))
		if len(res) == 0 {
			fmt.Println("no object meets the threshold")
		}
		for _, r := range res {
			fmt.Printf("  object %6d  p=%.4f\n", r.ObjectID, r.Prob)
		}
	case "cnn":
		res, stats, err := proc.ContinuousNN(q, *ts, *te, *tau, *seed)
		fatal(err)
		fmt.Printf("filter: %d candidates, %d influencers; %d worlds sampled\n\n",
			stats.Candidates, stats.Influencers, stats.Worlds)
		if len(res) == 0 {
			fmt.Println("no (object, timestamp set) meets the threshold")
		}
		for _, r := range res {
			fmt.Printf("  object %6d  tics %v  p=%.4f\n", r.ObjectID, r.Times, r.Prob)
		}
	default:
		fmt.Fprintf(os.Stderr, "pnnquery: unknown semantics %q\n", *semantics)
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnnquery: %v\n", err)
		os.Exit(1)
	}
}
