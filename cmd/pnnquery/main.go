// Command pnnquery generates an uncertain trajectory database and runs one
// probabilistic nearest-neighbor query against it, printing results and
// filter statistics. It is a scriptable front door to the library for
// exploration and regression comparison.
//
// Usage:
//
//	pnnquery -dataset synthetic -objects 1000 -semantics forall -tau 0.3
//	pnnquery -dataset taxi -objects 500 -semantics cnn -tau 0.5 -ts 120 -te 130
//	pnnquery -semantics exists -k 2
//	pnnquery -semantics forall -tau 0.3 -eps 0.05 -max-samples 100000
//
// With -follow the query becomes a standing subscription: after the
// initial answer, pnnquery ingests a few synthetic objects into the
// query's window and prints every incremental re-evaluation event the
// subscription delivers, ending with the terminal bye.
//
// With -server the query is POSTed to a running pnnserve (standalone or
// cluster router) instead of building a local database:
//
//	pnnquery -server http://localhost:8080 -state 17 -semantics forall -tau 0.3 -ts 500
//
// Structured error envelopes are rendered as "code: message", and
// transient 503 answers (a cluster gather that could not complete, code
// "peer_unavailable") are retried with exponential backoff.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pnn"
	"pnn/internal/server"
)

func main() {
	var (
		dataset   = flag.String("dataset", "synthetic", "synthetic | taxi")
		states    = flag.Int("states", 10000, "number of network states")
		objects   = flag.Int("objects", 1000, "number of uncertain objects")
		lifetime  = flag.Int("lifetime", 100, "object lifetime in tics")
		horizon   = flag.Int("horizon", 1000, "database time horizon")
		obsEvery  = flag.Int("obs", 10, "tics between observations")
		samples   = flag.Int("samples", 10000, "sampled worlds per query")
		semantics = flag.String("semantics", "forall", "forall | exists | cnn")
		k         = flag.Int("k", 1, "k for kNN semantics (forall/exists)")
		tau       = flag.Float64("tau", 0.1, "probability threshold τ")
		ts        = flag.Int("ts", -1, "query interval start (-1: auto)")
		te        = flag.Int("te", -1, "query interval end (-1: ts+9)")
		seed      = flag.Int64("seed", 1, "random seed")
		eps       = flag.Float64("eps", 0, "adaptive sampling: stop once the Hoeffding error separates every estimate from τ, or reaches eps (0: fixed budget)")
		delta     = flag.Float64("delta", 0, "adaptive sampling: failure probability δ (0: default 0.05)")
		maxSamp   = flag.Int("max-samples", 0, "adaptive sampling: escalation cap on sampled worlds (0: -samples)")
		follow    = flag.Int("follow", 0, "register the query as a standing subscription and ingest this many objects into its window, printing each re-evaluation event")
		srvURL    = flag.String("server", "", "query a running pnnserve at this base URL instead of building a local database (requires -state and -ts)")
		state     = flag.Int("state", -1, "query reference state (-1: derived from the seed; required with -server)")
		retries   = flag.Int("retries", 4, "server mode: attempts for transient 503 (peer_unavailable) answers, with exponential backoff")
	)
	flag.Parse()

	if *srvURL != "" {
		if *state < 0 || *ts < 0 {
			fmt.Fprintln(os.Stderr, "pnnquery: -server mode needs explicit -state and -ts (no local network to derive them from)")
			os.Exit(2)
		}
		if *te < 0 {
			*te = *ts + 9
		}
		runServer(*srvURL, *semantics, *state, *ts, *te, *k, *tau, *seed, *eps, *delta, *maxSamp, *retries)
		return
	}

	var (
		net *pnn.Network
		db  *pnn.DB
		err error
	)
	switch *dataset {
	case "synthetic":
		net, db, err = pnn.SyntheticDataset(*states, 8, *objects, *lifetime, *horizon, *obsEvery, *seed)
	case "taxi":
		net, db, err = pnn.TaxiDataset(*states, *objects, *lifetime, *horizon, *obsEvery, *seed)
	default:
		fmt.Fprintf(os.Stderr, "pnnquery: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	fatal(err)

	proc, err := db.Build(*samples)
	fatal(err)

	// Query: an explicit or uniformly random state, interval defaulting
	// to the middle of the horizon.
	qs := *state
	if qs < 0 || qs >= net.NumStates() {
		qs = int(uint64(*seed*2654435761) % uint64(net.NumStates()))
	}
	if *ts < 0 {
		*ts = *horizon / 2
	}
	if *te < 0 {
		*te = *ts + 9
	}
	q := pnn.AtState(net, qs)
	fmt.Printf("dataset=%s |D|=%d states=%d  query state %d %v  T=[%d,%d]  τ=%.2f\n\n",
		*dataset, db.Len(), net.NumStates(), qs, net.StatePoint(qs), *ts, *te, *tau)

	var sem pnn.Semantics
	switch *semantics {
	case "forall":
		sem = pnn.ForAll
	case "exists":
		sem = pnn.Exists
	case "cnn":
		sem = pnn.Continuous
	default:
		fmt.Fprintf(os.Stderr, "pnnquery: unknown semantics %q\n", *semantics)
		os.Exit(2)
	}
	conf := pnn.Confidence{Eps: *eps, Delta: *delta, MaxSamples: *maxSamp}
	if err := conf.Validate(); err != nil {
		fatal(err)
	}
	req := pnn.Request{
		Semantics: sem, Query: q, Ts: *ts, Te: *te, K: *k, Tau: *tau, Seed: *seed,
		Confidence: conf,
	}
	if *follow > 0 {
		followQuery(proc, req, conf, qs, *follow)
		return
	}
	resp := proc.Run(req)
	fatal(resp.Err)
	printAnswer(resp, sem, conf)
}

// followQuery registers req as a standing subscription, then ingests
// writes objects parked at the query state inside the window — each one
// lands inside the subscription's influence region and triggers an
// incremental re-evaluation, printed as it is delivered.
func followQuery(proc *pnn.Processor, req pnn.Request, conf pnn.Confidence, qs, writes int) {
	s, err := proc.Subscribe(req, pnn.Delivery{QueueCap: writes + 2})
	fatal(err)
	printEvent := func() {
		e, ok := <-s.Events()
		if !ok {
			fatal(fmt.Errorf("subscription channel closed unexpectedly"))
		}
		if e.Bye {
			fmt.Printf("event %d: bye\n", e.Seq)
			return
		}
		fmt.Printf("event %d  snapshot version %d", e.Seq, e.Version)
		if e.Dropped > 0 {
			fmt.Printf("  (%d dropped)", e.Dropped)
		}
		fmt.Println()
		resp := e.Payload.(pnn.Response)
		fatal(resp.Err)
		if st := resp.Stats; st.GroupSize > 0 {
			fmt.Printf("sweep: group of %d, %d worlds drawn", st.GroupSize, st.Worlds)
			if st.WorldFloor > 0 {
				fmt.Printf(", floor %d worlds", st.WorldFloor)
			}
			if st.BudgetReused {
				fmt.Printf(" (budget reused)")
			}
			fmt.Println()
		}
		printAnswer(resp, req.Semantics, conf)
		fmt.Println()
	}
	printEvent() // the initial evaluation
	mid := (req.Ts + req.Te) / 2
	for i := 0; i < writes; i++ {
		id := 1_000_000 + i
		_, err := proc.AddObject(id, []pnn.Observation{{T: mid, State: qs}})
		fatal(err)
		fmt.Printf("ingested object %d at state %d, t=%d\n", id, qs, mid)
		if !proc.WaitSubscriptionsIdle(time.Minute) {
			fatal(fmt.Errorf("subscription did not re-evaluate within a minute"))
		}
		printEvent()
	}
	proc.Unsubscribe(s.ID())
	for e := range s.Events() {
		if e.Bye {
			fmt.Printf("event %d: bye\n", e.Seq)
		}
	}
}

func printAnswer(resp pnn.Response, sem pnn.Semantics, conf pnn.Confidence) {
	stats := resp.Stats
	fmt.Printf("filter: %d candidates, %d influencers; %d worlds sampled\n",
		stats.Candidates, stats.Influencers, stats.Worlds)
	if conf.Enabled() {
		stopped := "budget exhausted"
		if stats.EarlyStopped {
			stopped = "stopped early"
		}
		fmt.Printf("±%.4f Hoeffding bound at δ=%.3g (%s)\n\n", stats.ErrorBound, conf.EffDelta(), stopped)
	} else {
		fmt.Printf("±%.3f at 95%% confidence (Hoeffding)\n\n", pnn.SampleBound(stats.Worlds, 0.05))
	}
	switch sem {
	case pnn.Continuous:
		if len(resp.Intervals) == 0 {
			fmt.Println("no (object, timestamp set) meets the threshold")
		}
		for _, r := range resp.Intervals {
			fmt.Printf("  object %6d  tics %v  p=%.4f\n", r.ObjectID, r.Times, r.Prob)
		}
	default:
		if len(resp.Results) == 0 {
			fmt.Println("no object meets the threshold")
		}
		for _, r := range resp.Results {
			fmt.Printf("  object %6d  p=%.4f\n", r.ObjectID, r.Prob)
		}
	}
}

// runServer answers the query through a running pnnserve's /v1 API.
// Error envelopes are rendered by code and message — never as raw JSON
// — and transient 503s (a cluster gather that could not complete
// consistently) are retried with exponential backoff.
func runServer(base, semantics string, state, ts, te, k int, tau float64, seed int64, eps, delta float64, maxSamp, retries int) {
	var endpoint string
	switch semantics {
	case "forall":
		endpoint = "/v1/forallnn"
	case "exists":
		endpoint = "/v1/existsnn"
	case "cnn":
		endpoint = "/v1/pcnn"
	default:
		fmt.Fprintf(os.Stderr, "pnnquery: unknown semantics %q\n", semantics)
		os.Exit(2)
	}
	spec := server.QuerySpec{
		Query:  &server.QueryRef{State: &state},
		Window: &server.Window{Ts: ts, Te: te},
		K:      k, Tau: tau, Seed: seed,
	}
	conf := pnn.Confidence{Eps: eps, Delta: delta, MaxSamples: maxSamp}
	if conf.Enabled() {
		spec.Confidence = &server.ConfidenceJSON{Eps: eps, Delta: delta, MaxSamples: maxSamp}
	}
	body, err := json.Marshal(spec)
	fatal(err)

	backoff := 250 * time.Millisecond
	if retries < 1 {
		retries = 1
	}
	for attempt := 1; ; attempt++ {
		status, raw, err := postJSON(base+endpoint, body)
		fatal(err)
		if status == http.StatusOK {
			var resp server.QueryResponse
			fatal(json.Unmarshal(raw, &resp))
			fmt.Printf("server %s  T=[%d,%d]  state %d  τ=%.2f\n", base, ts, te, state, tau)
			fmt.Printf("snapshot version %d  vector %v\n\n", resp.Version.Max, resp.Version.Vector)
			printServerAnswer(resp, semantics, conf)
			return
		}
		code, msg := decodeEnvelope(raw)
		if status == http.StatusServiceUnavailable && attempt < retries {
			fmt.Fprintf(os.Stderr, "pnnquery: %s: %s — retrying in %v (%d/%d)\n",
				code, msg, backoff, attempt, retries)
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		fmt.Fprintf(os.Stderr, "pnnquery: server rejected the query (HTTP %d)\n  %s: %s\n", status, code, msg)
		os.Exit(1)
	}
}

// postJSON POSTs body and returns the status and raw answer bytes.
func postJSON(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// decodeEnvelope extracts the structured error envelope's stable code
// and message, falling back to a generic rendering for non-envelope
// bodies rather than dumping raw JSON at the user.
func decodeEnvelope(raw []byte) (code, msg string) {
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		msg = env.Error.Message
		if env.Error.Field != "" {
			msg += fmt.Sprintf(" (field %s)", env.Error.Field)
		}
		return env.Error.Code, msg
	}
	return "unknown_error", fmt.Sprintf("unrecognized error body (%d bytes)", len(raw))
}

// printServerAnswer renders a wire response in the same shape as the
// local printAnswer.
func printServerAnswer(resp server.QueryResponse, semantics string, conf pnn.Confidence) {
	fmt.Printf("filter: %d candidates, %d influencers; %d worlds sampled\n",
		resp.Stats.Candidates, resp.Stats.Influencers, resp.Sampling.SamplesDrawn)
	if conf.Enabled() {
		stopped := "budget exhausted"
		if resp.Sampling.EarlyStopped {
			stopped = "stopped early"
		}
		fmt.Printf("±%.4f Hoeffding bound at δ=%.3g (%s)\n\n", resp.Sampling.ErrorBound, conf.EffDelta(), stopped)
	} else {
		fmt.Printf("±%.3f at 95%% confidence (Hoeffding)\n\n", pnn.SampleBound(resp.Sampling.SamplesDrawn, 0.05))
	}
	if semantics == "cnn" {
		if len(resp.Intervals) == 0 {
			fmt.Println("no (object, timestamp set) meets the threshold")
		}
		for _, r := range resp.Intervals {
			fmt.Printf("  object %6d  tics %v  p=%.4f\n", r.ObjectID, r.Times, r.Prob)
		}
		return
	}
	if len(resp.Results) == 0 {
		fmt.Println("no object meets the threshold")
	}
	for _, r := range resp.Results {
		fmt.Printf("  object %6d  p=%.4f\n", r.ObjectID, r.Prob)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnnquery: %v\n", err)
		os.Exit(1)
	}
}
