// Cross-process cluster conformance: boots a real router + two shard
// peers as separate pnnserve processes (plus a single-process two-shard
// reference), and checks the router's /v1 answers are byte-identical to
// the reference, that /v1/cluster sees both peers, and that killing a
// peer yields the structured peer_unavailable rejection. The in-process
// equivalent lives in internal/server; this tier exercises the real
// binary, real sockets and real process death, so it is opt-in:
//
//	PNN_CLUSTER_E2E=1 go test -race -run TestClusterProcessTrio ./cmd/pnnserve/
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pnn/internal/server"
)

func TestClusterProcessTrio(t *testing.T) {
	if os.Getenv("PNN_CLUSTER_E2E") == "" {
		t.Skip("set PNN_CLUSTER_E2E=1 to run the cross-process cluster tier")
	}

	bin := filepath.Join(t.TempDir(), "pnnserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pnnserve: %v\n%s", err, out)
	}

	ports := freePorts(t, 4)
	singleAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	peerAAddr := fmt.Sprintf("127.0.0.1:%d", ports[1])
	peerBAddr := fmt.Sprintf("127.0.0.1:%d", ports[2])
	routerAddr := fmt.Sprintf("127.0.0.1:%d", ports[3])
	peersFlag := fmt.Sprintf("a=http://%s,b=http://%s", peerAAddr, peerBAddr)

	// Every node regenerates the same deterministic dataset; peers then
	// retain only their ring slice before indexing.
	dataset := []string{
		"-dataset", "synthetic", "-states", "400", "-objects", "40",
		"-lifetime", "60", "-horizon", "120", "-obs", "10",
		"-seed", "1", "-samples", "200",
	}
	start := func(name string, args ...string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin, append(args, dataset...)...)
		var logs bytes.Buffer
		cmd.Stdout, cmd.Stderr = &logs, &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
			if t.Failed() {
				t.Logf("%s logs:\n%s", name, logs.String())
			}
		})
		return cmd
	}

	start("single", "-addr", singleAddr, "-shards", "2")
	start("peer-a", "-addr", peerAAddr, "-role", "peer", "-peer-name", "a", "-peers", peersFlag)
	peerB := start("peer-b", "-addr", peerBAddr, "-role", "peer", "-peer-name", "b", "-peers", peersFlag)
	// The router bootstraps against the peers, so it can start last and
	// its /healthz going live implies the whole trio is up.
	start("router", "-addr", routerAddr, "-role", "router", "-peers", peersFlag,
		"-bootstrap-timeout", "60s", "-probe-interval", "200ms")

	waitHealthy(t, "http://"+singleAddr)
	waitHealthy(t, "http://"+routerAddr)

	// Identical answers from the router and the single process: results,
	// worlds, sampling and version blocks must match byte for byte. The
	// pruning diagnostics stats.candidates/influencers/sampler_builds
	// are partition-dependent (peers retain by ring arc, the reference
	// shards by object hash — both valid layouts), so they are
	// normalized out; internal/server's in-process conformance suite
	// pins full byte-identity on matched layouts.
	normalize := func(raw []byte) []byte {
		t.Helper()
		var qr server.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("answer undecodable: %v (%s)", err, raw)
		}
		worlds := qr.Stats.Worlds
		qr.Stats = server.StatsJSON{Worlds: worlds}
		out, err := json.Marshal(qr)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	queries := []struct{ path, body string }{
		{"/v1/forallnn", `{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.1, "seed": 7}`},
		{"/v1/existsnn", `{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.1, "seed": 7, "k": 2}`},
		{"/v1/forallnn", `{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.3, "seed": 7, "confidence": {"eps": 0.1}}`},
	}
	for _, q := range queries {
		sCode, sRaw := postBody(t, "http://"+singleAddr+q.path, q.body)
		rCode, rRaw := postBody(t, "http://"+routerAddr+q.path, q.body)
		if sCode != http.StatusOK || rCode != http.StatusOK {
			t.Fatalf("%s: single = %d (%s), router = %d (%s)", q.path, sCode, sRaw, rCode, rRaw)
		}
		if s, r := normalize(sRaw), normalize(rRaw); !bytes.Equal(s, r) {
			t.Errorf("%s diverges:\nsingle: %s\nrouter: %s", q.path, s, r)
		}
	}

	// The router sees both peers healthy.
	var st struct {
		Peers []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"peers"`
	}
	getInto(t, "http://"+routerAddr+"/v1/cluster", &st)
	if len(st.Peers) != 2 || !st.Peers[0].Healthy || !st.Peers[1].Healthy {
		t.Fatalf("cluster status = %+v, want 2 healthy peers", st)
	}

	// Kill one peer: queries must fail structurally, never partially.
	if err := peerB.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	peerB.Wait()
	code, raw := postBody(t, "http://"+routerAddr+"/v1/forallnn",
		`{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.1, "seed": 7}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query with dead peer = %d, want 503 (%s)", code, raw)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error envelope undecodable: %s", raw)
	}
	if env.Error.Code != "peer_unavailable" {
		t.Errorf("error.code = %q, want peer_unavailable (%s)", env.Error.Code, raw)
	}
	if bytes.Contains(raw, []byte(`"results"`)) {
		t.Errorf("dead-peer answer leaked partial results: %s", raw)
	}
}

// freePorts reserves n distinct loopback ports and releases them for
// the servers to bind.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
	}
	return ports
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}

func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func getInto(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
