// Cross-process durability conformance: boots a real durable pnnserve,
// feeds it acknowledged writes, SIGKILLs it mid-ingest, restarts it on
// the same -data-dir and checks (a) every acknowledged write survived,
// and (b) the recovered process answers /v1 queries byte-identically —
// stats, sampling block and version vector included — to a volatile
// reference server fed the same write prefix. The in-process
// equivalents live in internal/shard and internal/store; this tier
// exercises the real binary, real fsyncs and real process death, so it
// is opt-in:
//
//	PNN_DURABILITY_E2E=1 go test -race -run TestDurabilityKillRecover ./cmd/pnnserve/
package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// scriptWrite is one deterministic ingest call: an add (/v1/objects) or
// an observe (/v1/observe) with a pre-rendered body. The sequence is a
// pure function of its length, so any prefix can be replayed against a
// fresh server to reproduce the exact database state.
type scriptWrite struct {
	path string
	body string
}

// writeScript builds n deterministic writes against the synthetic
// dataset's 400-state network. Adds register single-observation objects
// (always consistent); observes extend an earlier object at its own
// state (the a-priori chain self-loops, so idling is always legal).
func writeScript(n int) []scriptWrite {
	type obj struct{ id, t, state int }
	var added []obj
	out := make([]scriptWrite, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 2 && len(added) > 0 {
			o := &added[i%len(added)]
			o.t += 1 + i%5
			out = append(out, scriptWrite{
				path: "/v1/observe",
				body: fmt.Sprintf(`{"id": %d, "observations": [{"t": %d, "state": %d}]}`, o.id, o.t, o.state),
			})
			continue
		}
		o := obj{id: 9000 + len(added), t: (i * 7) % 100, state: (i * 13) % 400}
		added = append(added, o)
		out = append(out, scriptWrite{
			path: "/v1/objects",
			body: fmt.Sprintf(`{"id": %d, "observations": [{"t": %d, "state": %d}]}`, o.id, o.t, o.state),
		})
	}
	return out
}

func TestDurabilityKillRecover(t *testing.T) {
	if os.Getenv("PNN_DURABILITY_E2E") == "" {
		t.Skip("set PNN_DURABILITY_E2E=1 to run the cross-process durability tier")
	}

	bin := filepath.Join(t.TempDir(), "pnnserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pnnserve: %v\n%s", err, out)
	}

	ports := freePorts(t, 3)
	durAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	durAddr2 := fmt.Sprintf("127.0.0.1:%d", ports[1])
	refAddr := fmt.Sprintf("127.0.0.1:%d", ports[2])
	dataDir := filepath.Join(t.TempDir(), "state")

	// Every incarnation regenerates the same deterministic dataset; the
	// durable ones additionally journal to (and recover from) dataDir.
	dataset := []string{
		"-dataset", "synthetic", "-states", "400", "-objects", "40",
		"-lifetime", "60", "-horizon", "120", "-obs", "10",
		"-seed", "1", "-samples", "200", "-shards", "2",
	}
	start := func(name string, args ...string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin, append(args, dataset...)...)
		var logs bytes.Buffer
		cmd.Stdout, cmd.Stderr = &logs, &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
			if t.Failed() {
				t.Logf("%s logs:\n%s", name, logs.String())
			}
		})
		return cmd
	}

	durable := start("durable", "-addr", durAddr,
		"-data-dir", dataDir, "-spill-interval", "300ms")
	waitHealthy(t, "http://"+durAddr)

	// Phase 1: acknowledged writes. Every one of these must survive the
	// kill — each was fsynced to the WAL before its 200 went out.
	const acked = 30
	const inflight = 400
	// One spare entry beyond the stream: the post-recovery write below
	// needs a next script element even if every in-flight write landed.
	script := writeScript(acked + inflight + 1)
	for i := 0; i < acked; i++ {
		if code, raw := postBody(t, "http://"+durAddr+script[i].path, script[i].body); code != http.StatusOK {
			t.Fatalf("write %d = %d (%s)", i, code, raw)
		}
	}

	// Phase 2: keep writing sequentially from another goroutine and
	// SIGKILL mid-stream. The writer checks nothing — post-kill sends
	// fail with connection errors by design. Because the stream is
	// sequential (write i+1 starts only after i was acknowledged), the
	// set that survives is always a prefix of the script, possibly plus
	// one torn record recovery truncates.
	done := make(chan struct{})
	go func() {
		defer close(done)
		client := &http.Client{Timeout: 2 * time.Second}
		for i := acked; i < acked+inflight; i++ {
			resp, err := client.Post("http://"+durAddr+script[i].path,
				"application/json", bytes.NewReader([]byte(script[i].body)))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := durable.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	durable.Wait()
	<-done

	// Phase 3: restart on the same directory. Recovery runs before the
	// listener opens, so /healthz going live means the state is back.
	start("recovered", "-addr", durAddr2, "-data-dir", dataDir, "-spill-interval", "300ms")
	waitHealthy(t, "http://"+durAddr2)

	var health struct {
		Version    int64 `json:"version"`
		Durability struct {
			Enabled       bool    `json:"enabled"`
			Mode          string  `json:"mode"`
			SpillVersions []int64 `json:"spill_versions"`
		} `json:"durability"`
	}
	getInto(t, "http://"+durAddr2+"/healthz", &health)
	if !health.Durability.Enabled || health.Durability.Mode != "wal+fsync" {
		t.Fatalf("recovered durability block = %+v", health.Durability)
	}
	if len(health.Durability.SpillVersions) != 2 {
		t.Fatalf("spill_versions = %v, want one per shard", health.Durability.SpillVersions)
	}
	// Composite version = 1 + accepted writes, independent of layout.
	persisted := int(health.Version - 1)
	if persisted < acked {
		t.Fatalf("recovered version %d: only %d writes survived, %d were acknowledged",
			health.Version, persisted, acked)
	}
	if persisted > acked+inflight {
		t.Fatalf("recovered version %d implies %d writes, script had %d",
			health.Version, persisted, acked+inflight)
	}

	// Phase 4: a never-persisted reference server replays the surviving
	// prefix of the same script.
	start("reference", "-addr", refAddr)
	waitHealthy(t, "http://"+refAddr)
	for i := 0; i < persisted; i++ {
		if code, raw := postBody(t, "http://"+refAddr+script[i].path, script[i].body); code != http.StatusOK {
			t.Fatalf("reference replay %d = %d (%s)", i, code, raw)
		}
	}

	// Phase 5: byte-identical answers — raw response bodies, no
	// normalization. Stats, sampling block and version vector included.
	queries := []struct{ path, body string }{
		{"/v1/forallnn", `{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.1, "seed": 7}`},
		{"/v1/existsnn", `{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.1, "seed": 7, "k": 2}`},
		{"/v1/forallnn", `{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.3, "seed": 7, "confidence": {"eps": 0.1}}`},
		{"/v1/pcnn", `{"query": {"state": 17}, "window": {"ts": 20, "te": 29}, "tau": 0.2, "seed": 11}`},
	}
	compare := func(stage string) {
		t.Helper()
		for _, q := range queries {
			rCode, rRaw := postBody(t, "http://"+durAddr2+q.path, q.body)
			vCode, vRaw := postBody(t, "http://"+refAddr+q.path, q.body)
			if rCode != http.StatusOK || vCode != http.StatusOK {
				t.Fatalf("%s %s: recovered = %d (%s), reference = %d (%s)",
					stage, q.path, rCode, rRaw, vCode, vRaw)
			}
			if !bytes.Equal(rRaw, vRaw) {
				t.Errorf("%s %s diverges:\nrecovered: %s\nreference: %s", stage, q.path, rRaw, vRaw)
			}
		}
	}
	compare("post-recovery")

	// The recovered process keeps journaling: one more identical write to
	// both servers must leave them byte-identical again.
	next := script[persisted]
	for _, base := range []string{durAddr2, refAddr} {
		if code, raw := postBody(t, "http://"+base+next.path, next.body); code != http.StatusOK {
			t.Fatalf("post-recovery write on %s = %d (%s)", base, code, raw)
		}
	}
	compare("post-recovery-write")
}
