// Command pnnserve runs a standing probabilistic nearest-neighbor query
// service: it builds the database at startup — from a dataset file
// written by pnndata, or from a synthetic/taxi generator — and then
// answers P∀NN, P∃NN and PCNN queries over HTTP/JSON until stopped.
// Live ingestion is on by default (disable with -ingest=false): new
// objects and fresh observations are folded into versioned engine
// snapshots without ever blocking readers.
//
// Usage:
//
//	pnnserve -data taxi.pnn -addr :8080
//	pnnserve -dataset synthetic -states 10000 -objects 1000 -addr :8080
//
//	curl localhost:8080/healthz
//	curl -d '{"state": 17, "ts": 500, "te": 509, "tau": 0.1, "seed": 7}' \
//	    localhost:8080/v1/forallnn
//	curl -d '{"id": 1001, "observations": [{"t": 500, "state": 17}]}' \
//	    localhost:8080/v1/objects
//	curl -d '{"id": 1001, "observations": [{"t": 510, "state": 23}]}' \
//	    localhost:8080/v1/observe
//	curl -N -d '{"semantics": "exists", "query": {"state": 17},
//	             "window": {"ts": 500, "te": 509}, "tau": 0.1}' \
//	    localhost:8080/v1/subscribe
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pnn"
	"pnn/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "", "dataset file written by pnndata (overrides -dataset)")
		dataset  = flag.String("dataset", "synthetic", "generator when -data is unset: synthetic | taxi")
		states   = flag.Int("states", 10000, "generator: number of network states")
		objects  = flag.Int("objects", 1000, "generator: number of uncertain objects")
		lifetime = flag.Int("lifetime", 100, "generator: object lifetime in tics")
		horizon  = flag.Int("horizon", 1000, "generator: database time horizon")
		obsEvery = flag.Int("obs", 10, "generator: tics between observations")
		seed     = flag.Int64("seed", 1, "generator: random seed")
		samples  = flag.Int("samples", 10000, "sampled worlds per query")
		shards   = flag.Int("shards", 1, "index partitions: queries scatter-gather across all, writes touch one")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "batch worker pool size")
		qpar     = flag.Int("query-parallel", 0, "sampling goroutines per query (0: GOMAXPROCS/workers, so a full batch saturates the host without oversubscribing it)")
		warm     = flag.Bool("warm", false, "adapt all object models before accepting traffic")
		ingest   = flag.Bool("ingest", true, "enable live ingestion (/v1/objects, /v1/observe)")
		share    = flag.Bool("share-batch", false, "coalesce compatible /v1/batch requests into shared-world groups by default (per-request share_worlds overrides)")
		capSamp  = flag.Int("max-samples-cap", 0, "largest confidence.max_samples a request may ask for (0: 10x -samples)")
		maxSubs  = flag.Int("max-subs", 0, "most concurrently registered standing queries (/v1/subscribe; 0: 10000)")
		lenient  = flag.Bool("lenient", false, "drop objects with contradicting observations instead of failing")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		pprofOn  = flag.String("pprof", "", "also serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	)
	flag.Parse()

	if *pprofOn != "" {
		// A dedicated listener, never the query mux: profiling endpoints
		// stay bindable to loopback while the service faces traffic, and
		// are off entirely by default.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofOn)
			if err := http.ListenAndServe(*pprofOn, mux); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	var (
		net *pnn.Network
		db  *pnn.DB
		err error
	)
	switch {
	case *data != "":
		f, ferr := os.Open(*data)
		if ferr != nil {
			fatal(ferr)
		}
		net, db, err = pnn.LoadDataset(f)
		f.Close()
	case *dataset == "synthetic":
		net, db, err = pnn.SyntheticDataset(*states, 8, *objects, *lifetime, *horizon, *obsEvery, *seed)
	case *dataset == "taxi":
		net, db, err = pnn.TaxiDataset(*states, *objects, *lifetime, *horizon, *obsEvery, *seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	fatal(err)

	begin := time.Now()
	if *shards < 1 {
		*shards = 1
	}
	var proc *pnn.Processor
	if *lenient {
		var skipped []int
		proc, skipped, err = db.BuildLenientSharded(*samples, *shards)
		if err == nil && len(skipped) > 0 {
			log.Printf("dropped %d objects with contradicting observations", len(skipped))
		}
	} else {
		proc, err = db.BuildSharded(*samples, *shards)
	}
	fatal(err)
	if *workers < 1 {
		*workers = 1
	}
	if *qpar < 1 {
		*qpar = runtime.GOMAXPROCS(0) / *workers
		if *qpar < 1 {
			*qpar = 1
		}
	}
	proc.SetParallelism(*qpar)
	log.Printf("indexed %d objects over %d states in %v (%d shards, batch workers %d, per-query parallelism %d)",
		proc.NumObjects(), net.NumStates(), time.Since(begin), proc.NumShards(), *workers, *qpar)

	if *warm {
		begin = time.Now()
		fatal(proc.PrepareAll())
		log.Printf("adapted %d models in %v", proc.NumObjects(), time.Since(begin))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := server.New(net, proc, server.Config{
		BatchWorkers: *workers, Ingest: *ingest, ShareBatch: *share,
		MaxSamplesCap: *capSamp, MaxSubscriptions: *maxSubs,
	})
	log.Printf("serving on %s", *addr)
	if err := srv.Run(ctx, *addr, *grace); err != nil {
		fatal(err)
	}
	log.Printf("shut down cleanly")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnnserve: %v\n", err)
		os.Exit(1)
	}
}
