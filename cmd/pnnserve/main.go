// Command pnnserve runs a standing probabilistic nearest-neighbor query
// service: it builds the database at startup — from a dataset file
// written by pnndata, or from a synthetic/taxi generator — and then
// answers P∀NN, P∃NN and PCNN queries over HTTP/JSON until stopped.
// Live ingestion is on by default (disable with -ingest=false): new
// objects and fresh observations are folded into versioned engine
// snapshots without ever blocking readers.
//
// Usage:
//
//	pnnserve -data taxi.pnn -addr :8080
//	pnnserve -dataset synthetic -states 10000 -objects 1000 -addr :8080
//
//	curl localhost:8080/healthz
//	curl -d '{"state": 17, "ts": 500, "te": 509, "tau": 0.1, "seed": 7}' \
//	    localhost:8080/v1/forallnn
//	curl -d '{"id": 1001, "observations": [{"t": 500, "state": 17}]}' \
//	    localhost:8080/v1/objects
//	curl -d '{"id": 1001, "observations": [{"t": 510, "state": 23}]}' \
//	    localhost:8080/v1/observe
//	curl -N -d '{"semantics": "exists", "query": {"state": 17},
//	             "window": {"ts": 500, "te": 509}, "tau": 0.1}' \
//	    localhost:8080/v1/subscribe
//
// # Durability
//
// With -data-dir the node journals every acknowledged write to a
// per-shard write-ahead log and periodically spills columnar snapshots;
// on restart it rebuilds the exact pre-crash snapshot — version vector
// included — from the newest spill plus the WAL tail, before it starts
// listening. -fsync=false trades crash durability for write throughput;
// -spill-interval bounds how much WAL a restart must replay.
//
//	pnnserve -data taxi.pnn -data-dir /var/lib/pnn -addr :8080
//
// The router is stateless and refuses -data-dir.
//
// # Cluster mode
//
// The same binary runs a multi-node deployment: shard peers each own a
// consistent-hash slice of the objects and serve an /internal RPC
// surface, and a router scatters query work to all peers, gathering
// merged answers byte-identical to a single-process server over the
// same objects at the same snapshot versions and seed.
//
//	pnnserve -role peer -peer-name a -peers a=http://h1:9001,b=http://h2:9002 -addr :9001 ...
//	pnnserve -role peer -peer-name b -peers a=http://h1:9001,b=http://h2:9002 -addr :9002 ...
//	pnnserve -role router -peers a=http://h1:9001,b=http://h2:9002 -addr :8080 ...
//
// Every node of one cluster must load the same dataset (peers retain
// only the objects they own before indexing) and the router's -peers
// list must be identical across restarts: it fixes both the ring and
// the order of the version vector responses carry.
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pnn"
	"pnn/internal/cluster"
	"pnn/internal/ring"
	"pnn/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "", "dataset file written by pnndata (overrides -dataset)")
		dataset  = flag.String("dataset", "synthetic", "generator when -data is unset: synthetic | taxi")
		states   = flag.Int("states", 10000, "generator: number of network states")
		objects  = flag.Int("objects", 1000, "generator: number of uncertain objects")
		lifetime = flag.Int("lifetime", 100, "generator: object lifetime in tics")
		horizon  = flag.Int("horizon", 1000, "generator: database time horizon")
		obsEvery = flag.Int("obs", 10, "generator: tics between observations")
		seed     = flag.Int64("seed", 1, "generator: random seed")
		samples  = flag.Int("samples", 10000, "sampled worlds per query")
		shards   = flag.Int("shards", 1, "index partitions: queries scatter-gather across all, writes touch one")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "batch worker pool size")
		qpar     = flag.Int("query-parallel", 0, "sampling goroutines per query (0: GOMAXPROCS/workers, so a full batch saturates the host without oversubscribing it)")
		warm     = flag.Bool("warm", false, "adapt all object models before accepting traffic")
		ingest   = flag.Bool("ingest", true, "enable live ingestion (/v1/objects, /v1/observe)")
		share    = flag.Bool("share-batch", false, "coalesce compatible /v1/batch requests into shared-world groups by default (per-request share_worlds overrides)")
		capSamp  = flag.Int("max-samples-cap", 0, "largest confidence.max_samples a request may ask for (0: 10x -samples)")
		maxSubs  = flag.Int("max-subs", 0, "most concurrently registered standing queries (/v1/subscribe; 0: 10000)")
		sweepIv  = flag.Duration("sweep-interval", pnn.DefaultSweepInterval, "bounded delay before a batched subscription invalidation sweep drains accumulated dirty standing queries (0: sweep immediately per write)")
		lenient  = flag.Bool("lenient", false, "drop objects with contradicting observations instead of failing")
		dataDir  = flag.String("data-dir", "", "durable state directory: write-ahead log + snapshot spills, recovered on restart (empty: volatile, in-memory only)")
		fsync    = flag.Bool("fsync", true, "with -data-dir: fsync the WAL on every acknowledged write (false trades crash durability for throughput)")
		spillIv  = flag.Duration("spill-interval", time.Minute, "with -data-dir: period between snapshot spills that bound WAL replay length (0: spill only at startup)")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		pprofOn  = flag.String("pprof", "", "also serve net/http/pprof on this address (e.g. localhost:6060); off when empty")

		role     = flag.String("role", "standalone", "node role: standalone | router (scatter-gather coordinator over -peers) | peer (shard node serving the /internal RPC surface)")
		peers    = flag.String("peers", "", "comma-separated name=url shard peers in version-vector order (router: the gather fan-out; peer: the full ring, for ownership filtering)")
		peerName = flag.String("peer-name", "", "role=peer: this node's name on the consistent-hash ring (must appear in -peers)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per peer on the consistent-hash ring (0: 64)")
		peerTO   = flag.Duration("peer-timeout", 10*time.Second, "router: per-attempt RPC budget against each peer")
		hedge    = flag.Duration("hedge", 0, "router: straggler delay before the one hedged retry (0: peer-timeout/4)")
		probeIv  = flag.Duration("probe-interval", 2*time.Second, "router: peer health probe period")
		bootTO   = flag.Duration("bootstrap-timeout", time.Minute, "router: how long to wait for all peers at startup")
		aliases  = flag.Bool("legacy-aliases", false, "re-enable the deprecated flat QuerySpec alias fields (decoded with warnings) instead of rejecting them with code use_query_spec")
	)
	flag.Parse()

	if *pprofOn != "" {
		// A dedicated listener, never the query mux: profiling endpoints
		// stay bindable to loopback while the service faces traffic, and
		// are off entirely by default.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofOn)
			if err := http.ListenAndServe(*pprofOn, mux); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	var (
		net *pnn.Network
		db  *pnn.DB
		err error
	)
	switch {
	case *data != "":
		f, ferr := os.Open(*data)
		if ferr != nil {
			fatal(ferr)
		}
		net, db, err = pnn.LoadDataset(f)
		f.Close()
	case *dataset == "synthetic":
		net, db, err = pnn.SyntheticDataset(*states, 8, *objects, *lifetime, *horizon, *obsEvery, *seed)
	case *dataset == "taxi":
		net, db, err = pnn.TaxiDataset(*states, *objects, *lifetime, *horizon, *obsEvery, *seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	fatal(err)

	if *workers < 1 {
		*workers = 1
	}
	if *qpar < 1 {
		*qpar = runtime.GOMAXPROCS(0) / *workers
		if *qpar < 1 {
			*qpar = 1
		}
	}
	scfg := server.Config{
		BatchWorkers: *workers, Ingest: *ingest, ShareBatch: *share,
		MaxSamplesCap: *capSamp, MaxSubscriptions: *maxSubs,
		LegacyAliases: *aliases, Role: *role,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *role == server.RoleRouter {
		// The router indexes nothing: it owns the ring, scatters query
		// work to the peers and gathers merged, replay-exact answers.
		if *dataDir != "" {
			fatal(fmt.Errorf("role=router is stateless: -data-dir belongs on the peers, not the router"))
		}
		peerList, perr := parsePeers(*peers)
		fatal(perr)
		coord, cerr := cluster.NewCoordinator(net, cluster.Config{
			Peers: peerList, VirtualNodes: *vnodes,
			Timeout: *peerTO, HedgeDelay: *hedge, ProbeInterval: *probeIv,
			Workers: *qpar,
		})
		fatal(cerr)
		bctx, bcancel := context.WithTimeout(ctx, *bootTO)
		berr := coord.Bootstrap(bctx)
		bcancel()
		fatal(berr)
		coord.SetSweepInterval(*sweepIv)
		version, objects, vec := coord.SnapshotDetail()
		log.Printf("routing over %d peers (%d shards, %d objects, version %d, sample budget %d)",
			len(peerList), len(vec), objects, version, coord.SampleBudget())
		srv := server.New(net, coord, scfg)
		log.Printf("serving on %s", *addr)
		if err := srv.Run(ctx, *addr, *grace); err != nil {
			fatal(err)
		}
		log.Printf("shut down cleanly")
		return
	}

	if *role == server.RolePeer {
		// A peer loads the shared dataset but retains only the slice of
		// objects it owns on the ring before paying to index them.
		peerList, perr := parsePeers(*peers)
		fatal(perr)
		names := make([]string, len(peerList))
		found := false
		for i, p := range peerList {
			names[i] = p.Name
			found = found || p.Name == *peerName
		}
		if !found {
			fatal(fmt.Errorf("role=peer needs -peer-name naming one of -peers, got %q", *peerName))
		}
		rg, rerr := ring.New(names, *vnodes)
		fatal(rerr)
		before := db.Len()
		db.Retain(func(id int) bool { return rg.OwnerID(id) == *peerName })
		log.Printf("peer %s owns %d of %d objects", *peerName, db.Len(), before)
	} else if *role != server.RoleStandalone && *role != "" {
		fatal(fmt.Errorf("unknown role %q (want standalone, router or peer)", *role))
	}

	begin := time.Now()
	if *shards < 1 {
		*shards = 1
	}
	var (
		proc    *pnn.Processor
		skipped []int
		rec     *pnn.RecoveryInfo
	)
	if *dataDir != "" {
		// Durable build: recovery (spill load + WAL replay) happens here,
		// before the listener opens — a peer never announces healthy with
		// state it has not finished recovering.
		dur := pnn.Durability{Dir: *dataDir, Fsync: *fsync, SpillInterval: *spillIv}
		if *lenient {
			proc, skipped, rec, err = db.BuildLenientShardedDurable(*samples, *shards, dur)
		} else {
			proc, rec, err = db.BuildShardedDurable(*samples, *shards, dur)
		}
	} else if *lenient {
		proc, skipped, err = db.BuildLenientSharded(*samples, *shards)
	} else {
		proc, err = db.BuildSharded(*samples, *shards)
	}
	fatal(err)
	if len(skipped) > 0 {
		log.Printf("dropped %d objects with contradicting observations", len(skipped))
	}
	if rec != nil {
		if rec.Recovered {
			log.Printf("recovered %s to version %d: %d spill(s), %d WAL record(s) replayed, %d torn byte(s) truncated, %d corrupt spill fallback(s)",
				*dataDir, rec.Version, len(rec.SpillVersions), rec.ReplayedRecords, rec.TornBytes, rec.SpillFallbacks)
		} else {
			log.Printf("initialized durable state in %s (mode %s)", *dataDir, proc.DurabilityStatus().Mode())
		}
		defer func() {
			if cerr := proc.Close(); cerr != nil {
				log.Printf("closing durable state: %v", cerr)
			}
		}()
	}
	proc.SetParallelism(*qpar)
	proc.SetSweepInterval(*sweepIv)
	log.Printf("indexed %d objects over %d states in %v (%d shards, batch workers %d, per-query parallelism %d)",
		proc.NumObjects(), net.NumStates(), time.Since(begin), proc.NumShards(), *workers, *qpar)

	if *warm {
		begin = time.Now()
		fatal(proc.PrepareAll())
		log.Printf("adapted %d models in %v", proc.NumObjects(), time.Since(begin))
	}

	srv := server.New(net, proc, scfg)
	log.Printf("serving on %s", *addr)
	if err := srv.Run(ctx, *addr, *grace); err != nil {
		fatal(err)
	}
	log.Printf("shut down cleanly")
}

// parsePeers decodes the -peers flag: comma-separated name=url pairs,
// kept in the given order (it is the version-vector order).
func parsePeers(s string) ([]cluster.Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster roles need -peers (name=url,name=url,...)")
	}
	var out []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=url)", part)
		}
		out = append(out, cluster.Peer{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster roles need at least one -peers entry")
	}
	return out, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnnserve: %v\n", err)
		os.Exit(1)
	}
}
