// Command pnndata generates, persists and inspects uncertain-trajectory
// datasets, so experiment runs can share identical workloads across
// machines and revisions.
//
// Usage:
//
//	pnndata -gen synthetic -states 10000 -objects 1000 -out synth.pnn
//	pnndata -gen taxi -states 7000 -objects 1000 -out taxi.pnn
//	pnndata -in taxi.pnn -info
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pnn/internal/datagen"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate a dataset: synthetic | taxi")
		out      = flag.String("out", "", "write the dataset to this file")
		in       = flag.String("in", "", "read a dataset from this file")
		info     = flag.Bool("info", false, "print dataset statistics")
		states   = flag.Int("states", 10000, "number of network states")
		objects  = flag.Int("objects", 1000, "number of objects")
		lifetime = flag.Int("lifetime", 100, "object lifetime in tics")
		horizon  = flag.Int("horizon", 1000, "database horizon")
		obsEvery = flag.Int("obs", 10, "tics between observations")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var ds *datagen.Dataset
	var err error
	switch {
	case *gen == "synthetic":
		cfg := datagen.DefaultSyntheticConfig()
		cfg.States = *states
		cfg.Objects = *objects
		cfg.Lifetime = *lifetime
		cfg.Horizon = *horizon
		cfg.ObsInterval = *obsEvery
		ds, err = datagen.Synthetic(cfg, rand.New(rand.NewSource(*seed)))
	case *gen == "taxi":
		cfg := datagen.DefaultTaxiConfig()
		cfg.States = *states
		cfg.Taxis = *objects
		cfg.Lifetime = *lifetime
		cfg.Horizon = *horizon
		cfg.ObsInterval = *obsEvery
		ds, err = datagen.Taxi(cfg, rand.New(rand.NewSource(*seed)))
	case *gen != "":
		fatalf("unknown generator %q", *gen)
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		ds, err = datagen.Load(f)
		f.Close()
	default:
		fatalf("nothing to do: pass -gen or -in (see -help)")
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		if err := ds.Save(f); err != nil {
			fatalf("saving: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing: %v", err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%d bytes)\n", *out, st.Size())
	}

	if *info || *out == "" {
		printInfo(ds)
	}
}

func printInfo(ds *datagen.Dataset) {
	totalObs := 0
	minT, maxT := 1<<62, -1
	for _, o := range ds.Objects {
		totalObs += len(o.Obs)
		if o.First().T < minT {
			minT = o.First().T
		}
		if o.Last().T > maxT {
			maxT = o.Last().T
		}
	}
	fmt.Printf("states:        %d\n", ds.Space.Len())
	fmt.Printf("avg degree:    %.2f\n", ds.Space.AvgDegree())
	fmt.Printf("chain nnz:     %d\n", ds.Chain.At(0).NNZ())
	fmt.Printf("objects:       %d\n", len(ds.Objects))
	if len(ds.Objects) > 0 {
		fmt.Printf("observations:  %d (%.1f per object)\n",
			totalObs, float64(totalObs)/float64(len(ds.Objects)))
		fmt.Printf("time span:     [%d, %d]\n", minT, maxT)
	}
	fmt.Printf("ground truth:  %d trajectories\n", len(ds.Truth))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pnndata: "+format+"\n", args...)
	os.Exit(2)
}
