// Command benchdiff compares two benchmark summaries produced by
// cmd/benchjson and fails when the current run regressed: it is the
// blocking CI gate that turns the repository's BENCH_*.json perf
// trajectory from a record into a contract.
//
// Benchmarks are matched by (package, name). A shared benchmark whose
// ns/op grew by more than -max-regress percent is a regression; any
// regression exits 1 after printing the full diff table (markdown, so
// CI can upload it as a readable artifact via -out).
//
// ns/op is only comparable between runs on the same machine shape, so
// when the two files disagree on goos/goarch/GOMAXPROCS/Go version (or
// the shard configuration recorded by benchjson -shards) the gate
// prints the table, warns, and exits 0 — refresh BENCH_baseline.json
// from a CI bench-gate artifact to arm the gate for that shape.
// -gate-anyway overrides the guard for local experiments.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_abc123.json \
//	    -max-regress 25 -out benchdiff.md
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result mirrors cmd/benchjson's per-benchmark measurement.
type Result struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File mirrors cmd/benchjson's summary schema.
type File struct {
	Commit     string   `json:"commit,omitempty"`
	GoVersion  string   `json:"go_version"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Shards     int      `json:"shards,omitempty"`
	Results    []Result `json:"results"`
}

func (f *File) shape() string {
	return fmt.Sprintf("%s/%s procs=%d shards=%d %s", f.GoOS, f.GoArch, f.GoMaxProcs, f.Shards, f.GoVersion)
}

// Row is one line of the diff table.
type Row struct {
	Key        string // "package name"
	Base, Cur  float64
	DeltaPct   float64 // (cur-base)/base * 100; 0 when base is 0
	Regression bool
	Status     string // "shared" | "new" | "removed"
}

// diff matches benchmarks by (package, name) and flags shared ones
// whose ns/op grew beyond maxRegressPct.
func diff(base, cur *File, maxRegressPct float64) []Row {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Package+" "+r.Name] = r
	}
	var rows []Row
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		key := r.Package + " " + r.Name
		seen[key] = true
		b, ok := baseBy[key]
		if !ok {
			rows = append(rows, Row{Key: key, Cur: r.NsPerOp, Status: "new"})
			continue
		}
		row := Row{Key: key, Base: b.NsPerOp, Cur: r.NsPerOp, Status: "shared"}
		if b.NsPerOp > 0 {
			row.DeltaPct = (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			row.Regression = row.DeltaPct > maxRegressPct
		}
		rows = append(rows, row)
	}
	for key, b := range baseBy {
		if !seen[key] {
			rows = append(rows, Row{Key: key, Base: b.NsPerOp, Status: "removed"})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}

// table renders the diff as a markdown table.
func table(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("| benchmark | baseline ns/op | current ns/op | delta | status |\n")
	sb.WriteString("|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		status := r.Status
		if r.Regression {
			status = "**REGRESSION**"
		}
		delta := "-"
		if r.Status == "shared" {
			delta = fmt.Sprintf("%+.1f%%", r.DeltaPct)
		}
		sb.WriteString(fmt.Sprintf("| %s | %s | %s | %s | %s |\n",
			r.Key, fmtNs(r.Base, r.Status == "new"), fmtNs(r.Cur, r.Status == "removed"), delta, status))
	}
	return sb.String()
}

func fmtNs(v float64, absent bool) string {
	if absent {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	var (
		basePath   = flag.String("baseline", "BENCH_baseline.json", "baseline summary (benchjson output)")
		curPath    = flag.String("current", "", "current summary to gate (benchjson output)")
		maxRegress = flag.Float64("max-regress", 25, "max allowed ns/op growth in percent for any shared benchmark")
		outPath    = flag.String("out", "", "also write the markdown diff table to this file")
		gateAnyway = flag.Bool("gate-anyway", false, "enforce the gate even when the machine shapes differ")
	)
	flag.Parse()
	if *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*curPath)
	if err != nil {
		fatal(err)
	}

	rows := diff(base, cur, *maxRegress)
	md := table(rows)
	fmt.Print(md)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(md), 0o644); err != nil {
			fatal(err)
		}
	}

	var regressed []Row
	shared := 0
	for _, r := range rows {
		if r.Status == "shared" {
			shared++
		}
		if r.Regression {
			regressed = append(regressed, r)
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d shared, %d regressed (threshold %+.0f%%)\n",
		shared, len(regressed), *maxRegress)

	if base.shape() != cur.shape() && !*gateAnyway {
		fmt.Fprintf(os.Stderr,
			"benchdiff: WARNING machine shapes differ (baseline %s vs current %s); "+
				"ns/op is not comparable, gate skipped — refresh the baseline from a CI artifact\n",
			base.shape(), cur.shape())
		return
	}
	if len(regressed) > 0 {
		for _, r := range regressed {
			fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION %s: %.0f -> %.0f ns/op (%+.1f%%)\n",
				r.Key, r.Base, r.Cur, r.DeltaPct)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
