// Command benchdiff compares two benchmark summaries produced by
// cmd/benchjson and fails when the current run regressed: it is the
// blocking CI gate that turns the repository's BENCH_*.json perf
// trajectory from a record into a contract.
//
// Benchmarks are matched by (package, name). A shared benchmark whose
// ns/op grew by more than -max-regress percent, or whose allocs/op
// grew by more than -max-allocs-regress percent, is a regression; any
// regression exits 1 after printing the full diff table (markdown, so
// CI can upload it as a readable artifact via -out). The allocation
// gate protects the zero-allocation sampling kernel: ns/op on a noisy
// runner can absorb a reintroduced per-world allocation that
// allocs/op — a deterministic counter — cannot miss. A baseline that
// measured zero allocs/op is defended absolutely (any allocation
// fails, no percent involved); benchmarks without allocation data on
// either side (pre-ReportAllocs baselines) are gated on ns/op alone.
//
// ns/op is only comparable between runs on the same machine shape, so
// when the two files disagree on goos/goarch/GOMAXPROCS/Go version (or
// the shard configuration recorded by benchjson -shards) the gate
// prints the table, warns, and exits 0 — refresh BENCH_baseline.json
// from a CI bench-gate artifact to arm the gate for that shape.
// -gate-anyway overrides the guard for local experiments.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_abc123.json \
//	    -max-regress 25 -out benchdiff.md
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Result mirrors cmd/benchjson's per-benchmark measurement. A nil
// AllocsPerOp means the run recorded no allocation data for the
// benchmark (old-format summaries, or a run without -benchmem); an
// explicit 0 means a measured zero-allocation benchmark, which the
// gate defends absolutely.
type Result struct {
	Package     string   `json:"package,omitempty"`
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  float64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (benchjson's "extra"
	// block): evals/write and ms/write from the subscription fanout
	// benchmark. Units present in both summaries are gated like ns/op.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File mirrors cmd/benchjson's summary schema.
type File struct {
	Commit     string   `json:"commit,omitempty"`
	GoVersion  string   `json:"go_version"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Shards     int      `json:"shards,omitempty"`
	Results    []Result `json:"results"`
}

func (f *File) shape() string {
	return fmt.Sprintf("%s/%s procs=%d shards=%d %s", f.GoOS, f.GoArch, f.GoMaxProcs, f.Shards, f.GoVersion)
}

// ExtraDelta is one custom-metric comparison of a shared benchmark.
type ExtraDelta struct {
	Unit       string
	Base, Cur  float64
	DeltaPct   float64 // (cur-base)/base * 100; 0 when base is 0
	Regression bool    // grew beyond the ns/op threshold
}

// Row is one line of the diff table.
type Row struct {
	Key                   string // "package name"
	Base, Cur             float64
	DeltaPct              float64 // (cur-base)/base * 100; 0 when base is 0
	Regression            bool    // ns/op grew beyond the threshold
	BaseAllocs, CurAllocs *float64
	AllocsDeltaPct        float64      // +Inf when a zero-alloc baseline grew; 0 without data
	AllocsRegression      bool         // allocs/op grew beyond the threshold
	Extras                []ExtraDelta // custom metrics present in both summaries, by unit
	Status                string       // "shared" | "new" | "removed"
}

// Regressed reports whether the row fails the gate on any metric.
func (r Row) Regressed() bool {
	if r.Regression || r.AllocsRegression {
		return true
	}
	for _, e := range r.Extras {
		if e.Regression {
			return true
		}
	}
	return false
}

// diff matches benchmarks by (package, name) and flags shared ones
// whose ns/op grew beyond maxRegressPct or whose allocs/op grew beyond
// maxAllocRegressPct. The allocation gate arms when both sides
// recorded allocation data; a baseline that measured ZERO allocs/op is
// defended absolutely — any current allocation at all is a regression,
// since a zero-allocation steady state has no growth rate and losing
// it is the exact failure the gate exists to catch. Benchmarks without
// data on either side (summaries predating ReportAllocs/-benchmem) are
// gated on ns/op alone.
func diff(base, cur *File, maxRegressPct, maxAllocRegressPct float64) []Row {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Package+" "+r.Name] = r
	}
	var rows []Row
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		key := r.Package + " " + r.Name
		seen[key] = true
		b, ok := baseBy[key]
		if !ok {
			rows = append(rows, Row{Key: key, Cur: r.NsPerOp, CurAllocs: r.AllocsPerOp, Status: "new"})
			continue
		}
		row := Row{
			Key: key, Base: b.NsPerOp, Cur: r.NsPerOp,
			BaseAllocs: b.AllocsPerOp, CurAllocs: r.AllocsPerOp,
			Status: "shared",
		}
		if b.NsPerOp > 0 {
			row.DeltaPct = (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			row.Regression = row.DeltaPct > maxRegressPct
		}
		if b.AllocsPerOp != nil && r.AllocsPerOp != nil {
			switch ba, ca := *b.AllocsPerOp, *r.AllocsPerOp; {
			case ba > 0:
				row.AllocsDeltaPct = (ca - ba) / ba * 100
				row.AllocsRegression = row.AllocsDeltaPct > maxAllocRegressPct
			case ca > 0: // zero-alloc baseline reintroduced allocations
				row.AllocsDeltaPct = math.Inf(1)
				row.AllocsRegression = true
			}
		}
		// Custom metrics (evals/write, ms/write, ...) gate exactly like
		// ns/op when both summaries recorded the unit. Units on one side
		// only are ignored — adding or retiring a metric is not a
		// regression, the baseline refresh picks it up.
		units := make([]string, 0, len(b.Extra))
		for unit := range b.Extra {
			if _, ok := r.Extra[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ed := ExtraDelta{Unit: unit, Base: b.Extra[unit], Cur: r.Extra[unit]}
			if ed.Base > 0 {
				ed.DeltaPct = (ed.Cur - ed.Base) / ed.Base * 100
				ed.Regression = ed.DeltaPct > maxRegressPct
			}
			row.Extras = append(row.Extras, ed)
		}
		rows = append(rows, row)
	}
	for key, b := range baseBy {
		if !seen[key] {
			rows = append(rows, Row{Key: key, Base: b.NsPerOp, BaseAllocs: b.AllocsPerOp, Status: "removed"})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}

// table renders the diff as a markdown table.
func table(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("| benchmark | baseline ns/op | current ns/op | delta | baseline allocs/op | current allocs/op | allocs delta | status |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		status := r.Status
		if r.Regressed() {
			status = "**REGRESSION**"
		}
		delta, allocsDelta := "-", "-"
		if r.Status == "shared" {
			delta = fmt.Sprintf("%+.1f%%", r.DeltaPct)
			switch {
			case math.IsInf(r.AllocsDeltaPct, 1):
				allocsDelta = "0 → nonzero"
			case r.BaseAllocs != nil && r.CurAllocs != nil:
				allocsDelta = fmt.Sprintf("%+.1f%%", r.AllocsDeltaPct)
			}
		}
		sb.WriteString(fmt.Sprintf("| %s | %s | %s | %s | %s | %s | %s | %s |\n",
			r.Key, fmtNs(r.Base, r.Status == "new"), fmtNs(r.Cur, r.Status == "removed"), delta,
			fmtAllocs(r.BaseAllocs, r.Status == "new"), fmtAllocs(r.CurAllocs, r.Status == "removed"), allocsDelta, status))
	}
	extras := false
	for _, r := range rows {
		if len(r.Extras) > 0 {
			extras = true
			break
		}
	}
	if extras {
		sb.WriteString("\n| benchmark | metric | baseline | current | delta |\n")
		sb.WriteString("|---|---|---:|---:|---:|\n")
		for _, r := range rows {
			for _, e := range r.Extras {
				delta := fmt.Sprintf("%+.1f%%", e.DeltaPct)
				if e.Regression {
					delta += " **REGRESSION**"
				}
				sb.WriteString(fmt.Sprintf("| %s | %s | %.3g | %.3g | %s |\n", r.Key, e.Unit, e.Base, e.Cur, delta))
			}
		}
	}
	return sb.String()
}

func fmtNs(v float64, absent bool) string {
	if absent {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtAllocs(v *float64, absent bool) string {
	if absent || v == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", *v)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	var (
		basePath        = flag.String("baseline", "BENCH_baseline.json", "baseline summary (benchjson output)")
		curPath         = flag.String("current", "", "current summary to gate (benchjson output)")
		maxRegress      = flag.Float64("max-regress", 25, "max allowed ns/op growth in percent for any shared benchmark")
		maxAllocRegress = flag.Float64("max-allocs-regress", 25, "max allowed allocs/op growth in percent for any shared benchmark with allocation data on both sides")
		outPath         = flag.String("out", "", "also write the markdown diff table to this file")
		gateAnyway      = flag.Bool("gate-anyway", false, "enforce the gate even when the machine shapes differ")
	)
	flag.Parse()
	if *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*curPath)
	if err != nil {
		fatal(err)
	}

	rows := diff(base, cur, *maxRegress, *maxAllocRegress)
	md := table(rows)
	fmt.Print(md)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(md), 0o644); err != nil {
			fatal(err)
		}
	}

	var regressed []Row
	shared := 0
	for _, r := range rows {
		if r.Status == "shared" {
			shared++
		}
		if r.Regressed() {
			regressed = append(regressed, r)
		}
		// The allocation gate can only disarm silently in one direction:
		// the current run stopped reporting what the baseline measured
		// (dropped ReportAllocs, or -benchmem gone from the recipe).
		// Make that loss loud — it is how a reintroduced allocation
		// would slip past the gate unflagged.
		if r.Status == "shared" && r.BaseAllocs != nil && r.CurAllocs == nil {
			fmt.Fprintf(os.Stderr,
				"benchdiff: WARNING %s: baseline records allocs/op but the current run does not; "+
					"allocation gate disarmed for it — restore ReportAllocs/-benchmem\n", r.Key)
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d shared, %d regressed (thresholds ns/op %+.0f%%, allocs/op %+.0f%%)\n",
		shared, len(regressed), *maxRegress, *maxAllocRegress)

	if base.shape() != cur.shape() && !*gateAnyway {
		fmt.Fprintf(os.Stderr,
			"benchdiff: WARNING machine shapes differ (baseline %s vs current %s); "+
				"ns/op is not comparable, gate skipped — refresh the baseline from a CI artifact\n",
			base.shape(), cur.shape())
		return
	}
	if len(regressed) > 0 {
		for _, r := range regressed {
			if r.Regression {
				fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION %s: %.0f -> %.0f ns/op (%+.1f%%)\n",
					r.Key, r.Base, r.Cur, r.DeltaPct)
			}
			if r.AllocsRegression {
				fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION %s: %.0f -> %.0f allocs/op (%s)\n",
					r.Key, *r.BaseAllocs, *r.CurAllocs, allocsDeltaLabel(r.AllocsDeltaPct))
			}
			for _, e := range r.Extras {
				if e.Regression {
					fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION %s: %.3g -> %.3g %s (%+.1f%%)\n",
						r.Key, e.Base, e.Cur, e.Unit, e.DeltaPct)
				}
			}
		}
		os.Exit(1)
	}
}

func allocsDeltaLabel(pct float64) string {
	if math.IsInf(pct, 1) {
		return "zero-alloc baseline regressed"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
