package main

import (
	"strings"
	"testing"
)

func mkFile(procs int, results ...Result) *File {
	return &File{GoOS: "linux", GoArch: "amd64", GoMaxProcs: procs, Results: results}
}

// fp builds the pointer form benchjson uses for recorded allocs/op.
func fp(v float64) *float64 { return &v }

func TestDiffFlagsOnlyRealRegressions(t *testing.T) {
	base := mkFile(4,
		Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 1000},
		Result{Package: "pnn", Name: "BenchmarkB", NsPerOp: 1000},
		Result{Package: "pnn", Name: "BenchmarkGone", NsPerOp: 50},
	)
	cur := mkFile(4,
		Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 1200},  // +20%: within threshold
		Result{Package: "pnn", Name: "BenchmarkB", NsPerOp: 1300},  // +30%: regression
		Result{Package: "pnn", Name: "BenchmarkFresh", NsPerOp: 9}, // new
	)
	rows := diff(base, cur, 25, 25)
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Key] = r
	}
	if r := byKey["pnn BenchmarkA"]; r.Regression || r.Status != "shared" {
		t.Errorf("A = %+v, want shared non-regression", r)
	}
	if r := byKey["pnn BenchmarkB"]; !r.Regression {
		t.Errorf("B = %+v, want regression", r)
	}
	if r := byKey["pnn BenchmarkFresh"]; r.Status != "new" || r.Regression {
		t.Errorf("Fresh = %+v, want new", r)
	}
	if r := byKey["pnn BenchmarkGone"]; r.Status != "removed" || r.Regression {
		t.Errorf("Gone = %+v, want removed", r)
	}
}

func TestDiffImprovementsAndZeroBaseline(t *testing.T) {
	base := mkFile(4,
		Result{Package: "p", Name: "BenchmarkFast", NsPerOp: 1000},
		Result{Package: "p", Name: "BenchmarkZero", NsPerOp: 0},
	)
	cur := mkFile(4,
		Result{Package: "p", Name: "BenchmarkFast", NsPerOp: 10},  // 100x faster
		Result{Package: "p", Name: "BenchmarkZero", NsPerOp: 100}, // undefined delta
	)
	for _, r := range diff(base, cur, 25, 25) {
		if r.Regression {
			t.Errorf("%s flagged as regression: %+v", r.Key, r)
		}
	}
}

func TestDiffMatchesAcrossPackages(t *testing.T) {
	// The same benchmark name in two packages must not be conflated.
	base := mkFile(1,
		Result{Package: "a", Name: "BenchmarkX", NsPerOp: 100},
		Result{Package: "b", Name: "BenchmarkX", NsPerOp: 1000},
	)
	cur := mkFile(1,
		Result{Package: "a", Name: "BenchmarkX", NsPerOp: 100},
		Result{Package: "b", Name: "BenchmarkX", NsPerOp: 2000},
	)
	rows := diff(base, cur, 25, 25)
	regressed := 0
	for _, r := range rows {
		if r.Regression {
			regressed++
			if r.Key != "b BenchmarkX" {
				t.Errorf("wrong benchmark flagged: %+v", r)
			}
		}
	}
	if regressed != 1 {
		t.Errorf("%d regressions, want exactly 1", regressed)
	}
}

func TestDiffAllocRegressions(t *testing.T) {
	base := mkFile(4,
		Result{Package: "pnn", Name: "BenchmarkSteady", NsPerOp: 1000, AllocsPerOp: fp(100)},
		Result{Package: "pnn", Name: "BenchmarkLeaky", NsPerOp: 1000, AllocsPerOp: fp(100)},
		Result{Package: "pnn", Name: "BenchmarkNoData", NsPerOp: 1000},
		Result{Package: "pnn", Name: "BenchmarkZeroBase", NsPerOp: 1000, AllocsPerOp: fp(0)},
	)
	cur := mkFile(4,
		Result{Package: "pnn", Name: "BenchmarkSteady", NsPerOp: 1000, AllocsPerOp: fp(120)},    // +20%: within threshold
		Result{Package: "pnn", Name: "BenchmarkLeaky", NsPerOp: 1000, AllocsPerOp: fp(130)},     // +30%: regression
		Result{Package: "pnn", Name: "BenchmarkNoData", NsPerOp: 1000, AllocsPerOp: fp(999)},    // no baseline data: not gated
		Result{Package: "pnn", Name: "BenchmarkZeroBase", NsPerOp: 1000, AllocsPerOp: fp(1000)}, // measured-zero baseline regressed: absolute gate
	)
	byKey := map[string]Row{}
	for _, r := range diff(base, cur, 25, 25) {
		byKey[r.Key] = r
	}
	if r := byKey["pnn BenchmarkSteady"]; r.Regressed() {
		t.Errorf("Steady = %+v, want within threshold", r)
	}
	if r := byKey["pnn BenchmarkLeaky"]; !r.AllocsRegression || r.Regression || !r.Regressed() {
		t.Errorf("Leaky = %+v, want allocs regression only", r)
	}
	if r := byKey["pnn BenchmarkNoData"]; r.Regressed() {
		t.Errorf("NoData = %+v, want ungated without baseline allocation data", r)
	}
	if r := byKey["pnn BenchmarkZeroBase"]; !r.AllocsRegression {
		t.Errorf("ZeroBase = %+v, want absolute regression: a measured zero-alloc baseline reintroduced allocations", r)
	}
}

func TestDiffZeroAllocBaselineDefended(t *testing.T) {
	// The steady state the kernel targets: 0 allocs/op recorded in the
	// baseline. Staying at zero passes; any growth fails regardless of
	// thresholds; absent current data (a run without -benchmem) stays
	// ungated rather than false-failing.
	base := mkFile(1,
		Result{Package: "p", Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: fp(0)},
		Result{Package: "p", Name: "BenchmarkCold", NsPerOp: 100, AllocsPerOp: fp(0)},
	)
	cur := mkFile(1,
		Result{Package: "p", Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: fp(0)},
		Result{Package: "p", Name: "BenchmarkCold", NsPerOp: 100, AllocsPerOp: fp(1)},
	)
	byKey := map[string]Row{}
	for _, r := range diff(base, cur, 25, 1e9) {
		byKey[r.Key] = r
	}
	if r := byKey["p BenchmarkHot"]; r.Regressed() {
		t.Errorf("Hot = %+v, want zero staying zero to pass", r)
	}
	if r := byKey["p BenchmarkCold"]; !r.AllocsRegression {
		t.Errorf("Cold = %+v, want 0 -> 1 allocs/op flagged even with a huge percent threshold", r)
	}
	noData := mkFile(1, Result{Package: "p", Name: "BenchmarkHot", NsPerOp: 100})
	for _, r := range diff(base, noData, 25, 25) {
		if r.Key == "p BenchmarkHot" && r.Regressed() {
			t.Errorf("missing current allocation data must not fail the gate: %+v", r)
		}
	}
}

func TestDiffAllocThresholdIndependent(t *testing.T) {
	// A tight allocation threshold must not inherit the ns/op one.
	base := mkFile(4, Result{Package: "p", Name: "BenchmarkK", NsPerOp: 100, AllocsPerOp: fp(100)})
	cur := mkFile(4, Result{Package: "p", Name: "BenchmarkK", NsPerOp: 100, AllocsPerOp: fp(110)})
	if rows := diff(base, cur, 25, 5); !rows[0].AllocsRegression {
		t.Errorf("+10%% allocs under a 5%% threshold not flagged: %+v", rows[0])
	}
	if rows := diff(base, cur, 5, 25); rows[0].Regressed() {
		t.Errorf("+10%% allocs under a 25%% threshold flagged: %+v", rows[0])
	}
}

func TestTableRendersMarkdown(t *testing.T) {
	rows := diff(
		mkFile(4, Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: fp(10)}),
		mkFile(4, Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: fp(40)}),
		25, 25)
	md := table(rows)
	if !strings.Contains(md, "| benchmark |") || !strings.Contains(md, "**REGRESSION**") {
		t.Errorf("table missing header or regression marker:\n%s", md)
	}
	if !strings.Contains(md, "+50.0%") || !strings.Contains(md, "+300.0%") {
		t.Errorf("table missing ns/op or allocs delta:\n%s", md)
	}
	if !strings.Contains(md, "allocs/op") {
		t.Errorf("table missing allocation columns:\n%s", md)
	}
}

func TestShapeString(t *testing.T) {
	a := mkFile(4)
	b := mkFile(1)
	if a.shape() == b.shape() {
		t.Error("different GOMAXPROCS must yield different shapes")
	}
	c := mkFile(4)
	c.Shards = 4
	if a.shape() == c.shape() {
		t.Error("different shard configs must yield different shapes")
	}
	d := mkFile(4)
	d.GoVersion = "go1.22.12"
	if a.shape() == d.shape() {
		t.Error("different Go toolchains must yield different shapes")
	}
}
