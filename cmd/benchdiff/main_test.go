package main

import (
	"strings"
	"testing"
)

func mkFile(procs int, results ...Result) *File {
	return &File{GoOS: "linux", GoArch: "amd64", GoMaxProcs: procs, Results: results}
}

func TestDiffFlagsOnlyRealRegressions(t *testing.T) {
	base := mkFile(4,
		Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 1000},
		Result{Package: "pnn", Name: "BenchmarkB", NsPerOp: 1000},
		Result{Package: "pnn", Name: "BenchmarkGone", NsPerOp: 50},
	)
	cur := mkFile(4,
		Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 1200},  // +20%: within threshold
		Result{Package: "pnn", Name: "BenchmarkB", NsPerOp: 1300},  // +30%: regression
		Result{Package: "pnn", Name: "BenchmarkFresh", NsPerOp: 9}, // new
	)
	rows := diff(base, cur, 25)
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Key] = r
	}
	if r := byKey["pnn BenchmarkA"]; r.Regression || r.Status != "shared" {
		t.Errorf("A = %+v, want shared non-regression", r)
	}
	if r := byKey["pnn BenchmarkB"]; !r.Regression {
		t.Errorf("B = %+v, want regression", r)
	}
	if r := byKey["pnn BenchmarkFresh"]; r.Status != "new" || r.Regression {
		t.Errorf("Fresh = %+v, want new", r)
	}
	if r := byKey["pnn BenchmarkGone"]; r.Status != "removed" || r.Regression {
		t.Errorf("Gone = %+v, want removed", r)
	}
}

func TestDiffImprovementsAndZeroBaseline(t *testing.T) {
	base := mkFile(4,
		Result{Package: "p", Name: "BenchmarkFast", NsPerOp: 1000},
		Result{Package: "p", Name: "BenchmarkZero", NsPerOp: 0},
	)
	cur := mkFile(4,
		Result{Package: "p", Name: "BenchmarkFast", NsPerOp: 10},  // 100x faster
		Result{Package: "p", Name: "BenchmarkZero", NsPerOp: 100}, // undefined delta
	)
	for _, r := range diff(base, cur, 25) {
		if r.Regression {
			t.Errorf("%s flagged as regression: %+v", r.Key, r)
		}
	}
}

func TestDiffMatchesAcrossPackages(t *testing.T) {
	// The same benchmark name in two packages must not be conflated.
	base := mkFile(1,
		Result{Package: "a", Name: "BenchmarkX", NsPerOp: 100},
		Result{Package: "b", Name: "BenchmarkX", NsPerOp: 1000},
	)
	cur := mkFile(1,
		Result{Package: "a", Name: "BenchmarkX", NsPerOp: 100},
		Result{Package: "b", Name: "BenchmarkX", NsPerOp: 2000},
	)
	rows := diff(base, cur, 25)
	regressed := 0
	for _, r := range rows {
		if r.Regression {
			regressed++
			if r.Key != "b BenchmarkX" {
				t.Errorf("wrong benchmark flagged: %+v", r)
			}
		}
	}
	if regressed != 1 {
		t.Errorf("%d regressions, want exactly 1", regressed)
	}
}

func TestTableRendersMarkdown(t *testing.T) {
	rows := diff(
		mkFile(4, Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 100}),
		mkFile(4, Result{Package: "pnn", Name: "BenchmarkA", NsPerOp: 150}),
		25)
	md := table(rows)
	if !strings.Contains(md, "| benchmark |") || !strings.Contains(md, "**REGRESSION**") {
		t.Errorf("table missing header or regression marker:\n%s", md)
	}
	if !strings.Contains(md, "+50.0%") {
		t.Errorf("table missing delta:\n%s", md)
	}
}

func TestShapeString(t *testing.T) {
	a := mkFile(4)
	b := mkFile(1)
	if a.shape() == b.shape() {
		t.Error("different GOMAXPROCS must yield different shapes")
	}
	c := mkFile(4)
	c.Shards = 4
	if a.shape() == c.shape() {
		t.Error("different shard configs must yield different shapes")
	}
	d := mkFile(4)
	d.GoVersion = "go1.22.12"
	if a.shape() == d.shape() {
		t.Error("different Go toolchains must yield different shapes")
	}
}
