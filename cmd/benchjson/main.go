// Command benchjson converts Go benchmark output into a compact,
// machine-comparable JSON summary — the BENCH_<sha>.json files the CI
// pipeline uploads on every push so the repository's performance
// trajectory is checkable instead of anecdotal.
//
// It reads stdin in either format:
//
//   - the event stream of `go test -json -bench ...` (benchmark result
//     lines arrive as "output" events, tagged with their package), or
//   - plain `go test -bench ...` text.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem -json ./... \
//	    | go run ./cmd/benchjson -commit "$(git rev-parse HEAD)" > BENCH_$(git rev-parse HEAD).json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. AllocsPerOp is a pointer so a
// measured zero — the steady state of the world-sampling kernel, and
// the value cmd/benchdiff's allocation gate most needs to defend — is
// distinguishable in the JSON from "the benchmark did not report
// allocations at all" (absent field).
type Result struct {
	Package     string   `json:"package,omitempty"`
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  float64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "evals/write",
	// "ms/write" from the subscription fanout benchmark), keyed by
	// unit. cmd/benchdiff gates shared extra metrics like ns/op.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the whole summary.
type File struct {
	Commit     string `json:"commit,omitempty"`
	GoVersion  string `json:"go_version"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Shards records the shard configuration the benchmarks ran with
	// (0: repository default). cmd/benchdiff treats it as part of the
	// machine shape — summaries from different shard configs are not
	// gated against each other.
	Shards  int      `json:"shards,omitempty"`
	Results []Result `json:"results"`
}

// testEvent is the subset of test2json's event schema we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	commit := flag.String("commit", "", "commit hash recorded in the summary")
	shards := flag.Int("shards", 0, "shard configuration the benchmarks ran with (0: repository default)")
	flag.Parse()

	out := File{
		Commit:     *commit,
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     *shards,
	}
	emit := func(pkg, text string) {
		if r, ok := parseBenchLine(text); ok {
			r.Package = pkg
			out.Results = append(out.Results, r)
		}
	}
	// test2json splits one benchmark result over several output events
	// (the name flushes before the measurements), so reassemble complete
	// lines per package before parsing.
	partial := make(map[string]string)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				buf := partial[ev.Package] + ev.Output
				for {
					nl := strings.IndexByte(buf, '\n')
					if nl < 0 {
						break
					}
					emit(ev.Package, buf[:nl])
					buf = buf[nl+1:]
				}
				partial[ev.Package] = buf
				continue
			}
		}
		emit("", line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}
	for pkg, rest := range partial {
		emit(pkg, rest)
	}
	sort.Slice(out.Results, func(i, j int) bool {
		if out.Results[i].Package != out.Results[j].Package {
			return out.Results[i].Package < out.Results[j].Package
		}
		return out.Results[i].Name < out.Results[j].Name
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// normalizeName strips the "-<GOMAXPROCS>" suffix the testing package
// appends to benchmark names when GOMAXPROCS > 1, so summaries produced
// on machines with different core counts key-match on "name" (the
// machine shape is recorded once in File.GoMaxProcs instead). With
// GOMAXPROCS == 1 no suffix is ever emitted, so nothing is stripped —
// sub-benchmark names that happen to end in "-1" stay intact.
func normalizeName(name string) string {
	procs := runtime.GOMAXPROCS(0)
	if procs > 1 {
		return strings.TrimSuffix(name, "-"+strconv.Itoa(procs))
	}
	return name
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkObserve-8   	    570	   2097221 ns/op	 1485889 B/op	   13434 allocs/op
//
// Non-benchmark lines report ok=false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: normalizeName(fields[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = &v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return r, seen
}
