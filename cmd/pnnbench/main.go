// Command pnnbench regenerates the experiments of the paper's evaluation
// (Section 7). Each experiment corresponds to one figure; see DESIGN.md
// for the per-experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	pnnbench -list
//	pnnbench -exp fig6
//	pnnbench -exp all -samples 2000
//	pnnbench -exp fig12 -paper          # paper-scale parameters (slow)
//	pnnbench -exp fig13 -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pnn/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "all", "experiment to run (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		paper   = flag.Bool("paper", false, "paper-scale workloads (slow: minutes per figure)")
		tiny    = flag.Bool("tiny", false, "minimal workloads (seconds total)")
		samples = flag.Int("samples", 0, "sampled worlds per query (0 = scale default)")
		queries = flag.Int("queries", 0, "queries per setting (0 = scale default)")
		seed    = flag.Int64("seed", 1, "master random seed")
		csvPath = flag.String("csv", "", "also write results as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, r := range exp.Runners() {
			fmt.Printf("  %-9s %s\n", r.Name, r.Desc)
		}
		return
	}

	cfg := exp.DefaultConfig()
	if *paper {
		cfg = exp.PaperConfig()
	}
	if *tiny {
		cfg = exp.TinyConfig()
	}
	cfg.Seed = *seed
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}

	var runners []exp.Runner
	if *name == "all" {
		runners = exp.Runners()
	} else {
		r, ok := exp.Find(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "pnnbench: unknown experiment %q (try -list)\n", *name)
			os.Exit(2)
		}
		runners = []exp.Runner{r}
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnnbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, r := range runners {
		begin := time.Now()
		table, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnnbench: %s: %v\n", r.Name, err)
			os.Exit(1)
		}
		if err := table.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pnnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", r.Name, time.Since(begin).Round(time.Millisecond))
		if csvFile != nil {
			fmt.Fprintf(csvFile, "# %s\n", table.Title)
			if err := table.WriteCSV(csvFile); err != nil {
				fmt.Fprintf(os.Stderr, "pnnbench: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
