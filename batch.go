package pnn

import (
	"fmt"
	"runtime"
	"sync"

	"pnn/internal/shard"
)

// Semantics selects the predicate of a batch Request.
type Semantics string

const (
	// ForAll is P∀NNQ: the object is the (k-)NN at every time in [Ts, Te].
	ForAll Semantics = "forall"
	// Exists is P∃NNQ: the object is the (k-)NN at some time in [Ts, Te].
	Exists Semantics = "exists"
	// Continuous is PCNNQ: maximal timestamp sets on which the object
	// stays the likely (k-)NN.
	Continuous Semantics = "cnn"
)

// Request is one independent query of a batch.
type Request struct {
	Semantics Semantics
	Query     Query
	Ts, Te    int
	K         int // k for kNN semantics; 0 means 1
	Tau       float64
	Seed      int64 // per-request RNG seed; results depend only on it, not on scheduling
}

// Response is the answer to one batch Request, in the same position.
// Results is set for ForAll/Exists, Intervals for Continuous.
type Response struct {
	Results   []Result
	Intervals []IntervalResult
	Stats     Stats
	Err       error
}

// RunBatch answers a slice of independent queries, fanning them across a
// pool of `workers` goroutines (0 or less: GOMAXPROCS). All queries share
// the processor's sampler cache, so an object's model is adapted at most
// once for the whole batch. Each request draws its worlds from its own
// Seed, which makes every Response's Results/Intervals deterministic —
// independent of the worker count and of scheduling order. (The
// work-accounting Stats.SamplerBuilds is the exception: on a cold cache
// it reports whichever request happened to win each shared build, which
// does depend on scheduling.) The whole batch runs against the
// single engine snapshot current when RunBatch was called, so its
// responses are mutually consistent even while AddObject/Observe traffic
// lands concurrently. Responses align with requests by index;
// per-request failures land in Response.Err, never panic the batch.
func (p *Processor) RunBatch(reqs []Request, workers int) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	snap := p.set.Snapshot()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers == 1 {
		for i := range reqs {
			out[i] = runOne(snap, reqs[i])
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = runOne(snap, reqs[i])
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// BatchForAllNN answers one P∀NN query per entry of qs over a shared
// interval and threshold, seeding request i with baseSeed+i. It is
// shorthand for RunBatch with ForAll requests.
func (p *Processor) BatchForAllNN(qs []Query, ts, te int, tau float64, baseSeed int64, workers int) []Response {
	return p.RunBatch(sameShape(ForAll, qs, ts, te, tau, baseSeed), workers)
}

// BatchExistsNN is BatchForAllNN with P∃NN semantics.
func (p *Processor) BatchExistsNN(qs []Query, ts, te int, tau float64, baseSeed int64, workers int) []Response {
	return p.RunBatch(sameShape(Exists, qs, ts, te, tau, baseSeed), workers)
}

func sameShape(sem Semantics, qs []Query, ts, te int, tau float64, baseSeed int64) []Request {
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = Request{Semantics: sem, Query: q, Ts: ts, Te: te, Tau: tau, Seed: baseSeed + int64(i)}
	}
	return reqs
}

func runOne(snap *shard.Snap, req Request) (resp Response) {
	// Enforce the no-panic contract: a panicking request becomes its own
	// Response.Err instead of killing the worker goroutine (and with it
	// the whole process).
	defer func() {
		if r := recover(); r != nil {
			resp = Response{Err: fmt.Errorf("pnn: batch request panicked: %v", r)}
		}
	}()
	k := req.K
	if k == 0 {
		k = 1
	}
	if k < 1 {
		return Response{Err: fmt.Errorf("pnn: batch request needs k >= 1, got %d", k)}
	}
	switch req.Semantics {
	case ForAll:
		resp.Results, resp.Stats, resp.Err = snapForAllKNN(snap, req.Query, req.Ts, req.Te, k, req.Tau, req.Seed)
	case Exists:
		resp.Results, resp.Stats, resp.Err = snapExistsKNN(snap, req.Query, req.Ts, req.Te, k, req.Tau, req.Seed)
	case Continuous:
		resp.Intervals, resp.Stats, resp.Err = snapContinuousKNN(snap, req.Query, req.Ts, req.Te, k, req.Tau, req.Seed)
	default:
		resp.Err = fmt.Errorf("pnn: unknown batch semantics %q (want %q, %q or %q)",
			req.Semantics, ForAll, Exists, Continuous)
	}
	return resp
}
