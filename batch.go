package pnn

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"time"

	"pnn/internal/mcrand"
	"pnn/internal/query"
	"pnn/internal/shard"
)

// Semantics selects the predicate of a batch Request.
type Semantics string

const (
	// ForAll is P∀NNQ: the object is the (k-)NN at every time in [Ts, Te].
	ForAll Semantics = "forall"
	// Exists is P∃NNQ: the object is the (k-)NN at some time in [Ts, Te].
	Exists Semantics = "exists"
	// Continuous is PCNNQ: maximal timestamp sets on which the object
	// stays the likely (k-)NN.
	Continuous Semantics = "cnn"
)

// Request is one independent query of a batch.
type Request struct {
	Semantics Semantics
	Query     Query
	Ts, Te    int
	K         int // k for kNN semantics; 0 means 1
	Tau       float64
	// Seed is the per-request RNG seed; with world sharing disabled,
	// results depend only on it, never on scheduling. With sharing
	// enabled the group seed takes over (see BatchOptions.SharedSeed)
	// and Seed is ignored.
	Seed int64
	// Confidence, when enabled, replaces the processor's fixed sample
	// budget with an adaptive one: sampling stops as soon as every
	// estimate separates from Tau by more than the Hoeffding error (or
	// the error itself reaches Confidence.Eps), escalating up to
	// Confidence.MaxSamples worlds. Under world sharing the policy joins
	// the group key — only requests with identical policies coalesce —
	// and the group stops only when every member is decided, so a member
	// may see more worlds than it would alone, never fewer. The zero
	// value keeps the fixed budget.
	Confidence Confidence
	// MinWorlds floors an adaptive query's early stop: it cannot decide
	// before this many worlds (rounded up to the executor's fixed
	// decision cadence). The floor is part of the determinism contract —
	// the answer is a pure function of (snapshot, seed, policy, floor) —
	// and joins the world-sharing group key. Standing queries set it
	// automatically to reuse their group's previously proven budget;
	// Response.Stats.WorldFloor reports the floor in effect. Ignored
	// when Confidence is disabled.
	MinWorlds int
}

// Response is the answer to one batch Request, in the same position.
// Results is set for ForAll/Exists, Intervals for Continuous.
//
// Stats.SamplerBuilds and adaptation time are reported at batch level
// (BatchStats), not per response: on a cold cache the single-flight
// sampler cache attributes each shared build to whichever request
// happened to win it, which depends on scheduling. The batch-level sum
// is scheduling-independent; the per-response field is always 0 here.
type Response struct {
	Results   []Result
	Intervals []IntervalResult
	Stats     Stats
	// Version identifies the snapshot the response answered from — the
	// per-shard version vector plus the composite maximum (see
	// VersionInfo). Every response path sets it, including failed ones:
	// an error is still an answer about a particular snapshot.
	Version VersionInfo
	Err     error
}

// BatchStats is the scheduling-independent work accounting of one
// RunBatch call. Unlike the per-response Stats of historical releases,
// every field is deterministic for a given processor state and batch:
// SamplerBuilds is the number of models the whole batch adapted (each
// shared build counted exactly once, no matter which request won it).
type BatchStats struct {
	// Requests is the number of requests answered (== len(reqs)).
	Requests int
	// SamplerBuilds is the number of model adaptations the batch
	// performed; 0 once the cache is warm for every influencer touched.
	SamplerBuilds int
	// AdaptTime is the summed model-adaptation wall time across the
	// batch's queries (the TS phase of the paper's experiments).
	AdaptTime time.Duration
	// Groups is the number of shared-world groups executed; 0 when
	// sharing was disabled. Requests-Groups sampling passes were saved
	// by coalescing.
	Groups int
}

// BatchOptions tunes RunBatchStats.
type BatchOptions struct {
	// Workers is the worker-pool size; 0 or less picks GOMAXPROCS.
	Workers int
	// ShareWorlds coalesces compatible requests — same query reference
	// over the window, same [Ts, Te], same k — into one plan that
	// prunes once, adapts samplers once and samples each possible world
	// once, evaluating every member's predicate per chunk. Responses
	// are then estimated from shared worlds: probabilities agree with
	// independent evaluation within Monte-Carlo tolerance but are not
	// bit-identical to it, and the members of a group are correlated
	// (they saw the same worlds).
	ShareWorlds bool
	// SharedSeed is the batch-level seed of the sharing contract: a
	// group's worlds are drawn from mcrand.SubSeed(SharedSeed,
	// hash(group key)), where the group key is (Ts, Te, k, the query's
	// positions over the window). A response under sharing therefore
	// depends only on (snapshot, SharedSeed, its request's own
	// parameters) — never on which other requests were batched with it,
	// their order, or the worker count. Per-request Seeds are ignored.
	SharedSeed int64
}

// RunBatch answers a slice of independent queries, fanning them across a
// pool of `workers` goroutines (0 or less: GOMAXPROCS). All queries share
// the processor's sampler cache, so an object's model is adapted at most
// once for the whole batch. Each request draws its worlds from its own
// Seed, which makes every Response deterministic — independent of the
// worker count and of scheduling order. The whole batch runs against the
// single engine snapshot current when RunBatch was called, so its
// responses are mutually consistent even while AddObject/Observe traffic
// lands concurrently. Responses align with requests by index;
// per-request failures land in Response.Err, never panic the batch.
//
// It is RunBatchStats with sharing disabled, discarding the batch-level
// accounting.
func (p *Processor) RunBatch(reqs []Request, workers int) []Response {
	out, _ := p.RunBatchStats(reqs, BatchOptions{Workers: workers})
	return out
}

// RunBatchStats is RunBatch with explicit options — most importantly
// shared-world coalescing (BatchOptions.ShareWorlds) — and returns the
// batch-level work accounting alongside the responses.
func (p *Processor) RunBatchStats(reqs []Request, opts BatchOptions) ([]Response, BatchStats) {
	out := make([]Response, len(reqs))
	bst := BatchStats{Requests: len(reqs)}
	if len(reqs) == 0 {
		return out, bst
	}
	snap := p.set.Snapshot()
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.ShareWorlds {
		p.runShared(snap, reqs, opts.SharedSeed, workers, out, &bst)
		return out, bst
	}
	var mu sync.Mutex
	runPool(len(reqs), workers, func(i int) {
		var raw query.Stats
		out[i], raw = runOne(snap, reqs[i])
		mu.Lock()
		bst.SamplerBuilds += raw.SamplerBuilds
		bst.AdaptTime += raw.AdaptTime
		mu.Unlock()
	})
	return out, bst
}

// runPool fans fn over the item indices [0, n) on a pool of `workers`
// goroutines (clamped to n; one runs inline). fn must be safe for
// concurrent calls on distinct indices.
func runPool(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// batchGroup is one shared-world group: the requests whose (query
// positions over the window, interval, k) coincide, answered over one
// sampled world set.
type batchGroup struct {
	q         Query
	ts, te    int
	k         int
	seed      int64
	conf      Confidence
	minWorlds int
	items     []shard.GroupItem
	reqIdx    []int
}

// runShared partitions the valid requests into shared-world groups and
// executes each group as one plan via shard.Snap.RunShared, fanning
// groups across the worker pool. Invalid requests fail individually
// without joining a group.
func (p *Processor) runShared(snap *shard.Snap, reqs []Request, sharedSeed int64, workers int, out []Response, bst *BatchStats) {
	groups := make(map[string]*batchGroup)
	var order []*batchGroup
	for i, req := range reqs {
		k, op, err := normalizeRequest(req)
		if err != nil {
			out[i] = Response{Version: versionOf(snap), Err: err}
			continue
		}
		key := groupKey(req.Query, req.Ts, req.Te, k, req.Confidence, req.MinWorlds)
		g := groups[key]
		if g == nil {
			h := fnv.New64a()
			h.Write([]byte(key))
			g = &batchGroup{
				q: req.Query, ts: req.Ts, te: req.Te, k: k,
				seed:      mcrand.SubSeed64(sharedSeed, h.Sum64()),
				conf:      req.Confidence,
				minWorlds: req.MinWorlds,
			}
			groups[key] = g
			order = append(order, g)
		}
		g.items = append(g.items, shard.GroupItem{Op: op, Tau: req.Tau})
		g.reqIdx = append(g.reqIdx, i)
	}
	bst.Groups = len(order)
	var mu sync.Mutex
	runPool(len(order), workers, func(gi int) {
		g := order[gi]
		answers, st, err := sharedGroup(snap, g)
		mu.Lock()
		bst.SamplerBuilds += st.SamplerBuilds
		bst.AdaptTime += st.AdaptTime
		mu.Unlock()
		for j, ri := range g.reqIdx {
			if err != nil {
				out[ri] = Response{Version: versionOf(snap), Err: err}
				continue
			}
			out[ri] = answers[j]
		}
	})
}

// sharedGroup answers one group over one shared world set, converting
// shard answers to facade responses. A panic becomes the whole group's
// error rather than killing the worker.
func sharedGroup(snap *shard.Snap, g *batchGroup) (resps []Response, st query.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			resps, err = nil, fmt.Errorf("pnn: shared batch group panicked: %v", r)
		}
	}()
	answers, st, err := snap.RunShared(shard.GroupSpec{
		Q: g.q, Ts: g.ts, Te: g.te, K: g.k, Seed: g.seed, Conf: g.conf, MinWorlds: g.minWorlds,
	}, g.items)
	if err != nil {
		return nil, st, err
	}
	stats := convStats(st)
	stats.SamplerBuilds = 0 // batch-level accounting; see BatchStats
	vi := versionOf(snap)
	resps = make([]Response, len(answers))
	for i, a := range answers {
		resps[i] = Response{Stats: stats, Version: vi, Err: a.Err}
		if a.Err != nil {
			continue
		}
		resps[i].Results = convertResults(a.Results)
		if a.Intervals != nil {
			ivs := make([]IntervalResult, len(a.Intervals))
			for j, r := range a.Intervals {
				ivs[j] = IntervalResult{ObjectID: r.ID, Times: r.Times, Prob: r.Prob}
			}
			resps[i].Intervals = ivs
		}
	}
	return resps, st, nil
}

// normalizeRequest is the single validation point of both batch paths:
// it checks the request fields that must hold before a request may join
// a shared-world group (the fingerprint walks the query over the
// window, so the window and reference must be sane) or run
// independently, and maps the semantics to its predicate. Keeping one
// copy means a given invalid request fails with the same error whether
// or not sharing is enabled.
func normalizeRequest(req Request) (k int, op shard.GroupOp, err error) {
	k = req.K
	if k == 0 {
		k = 1
	}
	if k < 1 {
		return 0, 0, fmt.Errorf("pnn: batch request needs k >= 1, got %d", k)
	}
	switch req.Semantics {
	case ForAll:
		op = shard.OpForAll
	case Exists:
		op = shard.OpExists
	case Continuous:
		op = shard.OpCNN
		if req.Tau <= 0 {
			return 0, 0, fmt.Errorf("pnn: PCNN requires tau > 0, got %v", req.Tau)
		}
	default:
		return 0, 0, fmt.Errorf("pnn: unknown batch semantics %q (want %q, %q or %q)",
			req.Semantics, ForAll, Exists, Continuous)
	}
	if req.Query.Zero() {
		return 0, 0, fmt.Errorf("pnn: batch request has a zero Query (build one with AtPoint, AtState or Moving)")
	}
	if req.Te < req.Ts {
		return 0, 0, fmt.Errorf("pnn: inverted interval [%d, %d]", req.Ts, req.Te)
	}
	if err := req.Confidence.Validate(); err != nil {
		return 0, 0, err
	}
	if req.MinWorlds < 0 {
		return 0, 0, fmt.Errorf("pnn: batch request needs MinWorlds >= 0, got %d", req.MinWorlds)
	}
	return k, op, nil
}

// groupKey fingerprints what the sampled worlds of a request depend on:
// the interval, k, the confidence policy and its MinWorlds floor (an
// adaptive group's stop point is a function of policy and floor, so
// requests differing in either must not share worlds) and the query's
// position at every timestep of the window. Two requests with equal
// keys can share one world set; the key's hash also fixes the group's
// seed under the sharing contract.
func groupKey(q Query, ts, te, k int, conf Confidence, minWorlds int) string {
	buf := make([]byte, 0, 56+16*(te-ts+1))
	var tmp [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(tmp[:], u)
		buf = append(buf, tmp[:]...)
	}
	put(uint64(ts))
	put(uint64(te))
	put(uint64(k))
	put(math.Float64bits(conf.Eps))
	put(math.Float64bits(conf.Delta))
	put(uint64(conf.MaxSamples))
	put(uint64(minWorlds))
	for t := ts; t <= te; t++ {
		pt := q.At(t)
		put(math.Float64bits(pt.X))
		put(math.Float64bits(pt.Y))
	}
	return string(buf)
}

// BatchForAllNN answers one P∀NN query per entry of qs over a shared
// interval and threshold, seeding request i with baseSeed+i. It is
// shorthand for RunBatch with ForAll requests.
func (p *Processor) BatchForAllNN(qs []Query, ts, te int, tau float64, baseSeed int64, workers int) []Response {
	return p.RunBatch(sameShape(ForAll, qs, ts, te, tau, baseSeed), workers)
}

// BatchExistsNN is BatchForAllNN with P∃NN semantics.
func (p *Processor) BatchExistsNN(qs []Query, ts, te int, tau float64, baseSeed int64, workers int) []Response {
	return p.RunBatch(sameShape(Exists, qs, ts, te, tau, baseSeed), workers)
}

func sameShape(sem Semantics, qs []Query, ts, te int, tau float64, baseSeed int64) []Request {
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = Request{Semantics: sem, Query: q, Ts: ts, Te: te, Tau: tau, Seed: baseSeed + int64(i)}
	}
	return reqs
}

// runOne answers one independent request, returning the facade response
// plus the raw engine statistics for batch-level accounting. The
// response's own SamplerBuilds is zeroed: build attribution to a single
// request is scheduling-dependent, so it is reported only as the
// batch-level sum.
func runOne(snap *shard.Snap, req Request) (resp Response, raw query.Stats) {
	// Enforce the no-panic contract: a panicking request becomes its own
	// Response.Err instead of killing the worker goroutine (and with it
	// the whole process).
	defer func() {
		if r := recover(); r != nil {
			resp = Response{Version: versionOf(snap), Err: fmt.Errorf("pnn: batch request panicked: %v", r)}
		}
	}()
	k, op, err := normalizeRequest(req)
	if err != nil {
		return Response{Version: versionOf(snap), Err: err}, raw
	}
	spec := shard.GroupSpec{
		Q: req.Query, Ts: req.Ts, Te: req.Te, K: k, Seed: req.Seed, Conf: req.Confidence,
		MinWorlds: req.MinWorlds,
	}
	switch op {
	case shard.OpForAll:
		resp.Results, raw, resp.Err = rawForAllKNN(snap, spec, req.Tau)
	case shard.OpExists:
		resp.Results, raw, resp.Err = rawExistsKNN(snap, spec, req.Tau)
	case shard.OpCNN:
		resp.Intervals, raw, resp.Err = rawContinuousKNN(snap, spec, req.Tau)
	}
	resp.Stats = convStats(raw)
	resp.Stats.SamplerBuilds = 0 // batch-level accounting; see BatchStats
	if req.Confidence.Enabled() {
		resp.Stats.WorldFloor = req.MinWorlds
	}
	resp.Version = versionOf(snap)
	return resp, raw
}

func rawForAllKNN(snap *shard.Snap, spec shard.GroupSpec, tau float64) ([]Result, query.Stats, error) {
	res, st, err := snap.ForAllKNNSpec(spec, tau)
	return convertResults(res), st, err
}

func rawExistsKNN(snap *shard.Snap, spec shard.GroupSpec, tau float64) ([]Result, query.Stats, error) {
	res, st, err := snap.ExistsKNNSpec(spec, tau)
	return convertResults(res), st, err
}

func rawContinuousKNN(snap *shard.Snap, spec shard.GroupSpec, tau float64) ([]IntervalResult, query.Stats, error) {
	res, st, err := snap.CNNKSpec(spec, tau)
	out := make([]IntervalResult, len(res))
	for i, r := range res {
		out[i] = IntervalResult{ObjectID: r.ID, Times: r.Times, Prob: r.Prob}
	}
	return out, st, err
}
