package pnn

import "testing"

func TestBuildLenientSkipsBadObjects(t *testing.T) {
	net, err := NewGridNetwork(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	a := net.NearestState(Point{X: 0, Y: 0})
	b := net.NearestState(Point{X: 1, Y: 1})
	good := net.NearestState(Point{X: 0.5, Y: 0.5})

	db := NewDB(net)
	if err := db.Add(1, []Observation{{T: 0, State: good}, {T: 10, State: good}}); err != nil {
		t.Fatal(err)
	}
	// Teleporting object: 18 hops in 2 tics.
	if err := db.Add(2, []Observation{{T: 0, State: a}, {T: 2, State: b}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(3, []Observation{{T: 0, State: good}, {T: 8, State: good}}); err != nil {
		t.Fatal(err)
	}

	// Strict build fails.
	if _, err := db.Build(100); err == nil {
		t.Fatal("strict Build should fail on the teleporting object")
	}

	proc, skipped, err := db.BuildLenient(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != 2 {
		t.Fatalf("skipped = %v, want [2]", skipped)
	}
	// The surviving objects answer queries normally.
	res, _, err := proc.ExistsNN(AtState(net, good), 1, 7, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	for _, r := range res {
		ids[r.ObjectID] = true
	}
	if !ids[1] || !ids[3] {
		t.Errorf("results = %+v, want objects 1 and 3", res)
	}
	if ids[2] {
		t.Error("skipped object must not appear in results")
	}
	// Sampling the skipped object fails with unknown-id (it is gone).
	if _, err := proc.SampleTrajectory(2, 1); err == nil {
		t.Error("skipped object should be unknown to the processor")
	}
}

func TestBuildLenientAllGood(t *testing.T) {
	net, err := NewGridNetwork(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := net.NearestState(Point{X: 0.5, Y: 0.5})
	db := NewDB(net)
	if err := db.Add(7, []Observation{{T: 0, State: s}, {T: 5, State: s}}); err != nil {
		t.Fatal(err)
	}
	proc, skipped, err := db.BuildLenient(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v, want none", skipped)
	}
	if _, err := proc.SampleTrajectory(7, 1); err != nil {
		t.Errorf("SampleTrajectory: %v", err)
	}
}
