// Command indoor models the paper's RFID indoor-tracking motivation
// (Section 1, [1]): people move through a building instrumented with a
// grid of RFID readers that register them only when they pass a reader.
// Between reads their position is uncertain. Facility management asks:
// who was probably closest to a sensitive room while an alarm was active?
package main

import (
	"fmt"
	"log"

	"pnn"
)

func main() {
	// A 20×20 grid of reader cells covering one floor.
	net, err := pnn.NewGridNetwork(20, 20)
	if err != nil {
		log.Fatal(err)
	}
	cell := func(x, y int) int {
		return net.NearestState(pnn.Point{X: float64(x) / 20, Y: float64(y) / 20})
	}

	// Badge reads: person → (tic, reader cell). Reads are sparse because
	// people are only seen at doorways.
	db := pnn.NewDB(net)
	badgeReads := map[int][]pnn.Observation{
		// Staff member 1: worked near the server room all along.
		1: {{T: 0, State: cell(9, 9)}, {T: 15, State: cell(11, 9)}, {T: 30, State: cell(10, 10)}},
		// Staff member 2: crossed the floor once (grid distance per leg
		// stays below the elapsed tics, so the reads are consistent).
		2: {{T: 0, State: cell(2, 2)}, {T: 15, State: cell(9, 8)}, {T: 30, State: cell(15, 13)}},
		// Visitor 3: stayed at the lobby.
		3: {{T: 0, State: cell(1, 18)}, {T: 30, State: cell(2, 17)}},
	}
	for id, obs := range badgeReads {
		if err := db.Add(id, obs); err != nil {
			log.Fatal(err)
		}
	}
	proc, err := db.Build(8000)
	if err != nil {
		log.Fatal(err)
	}

	// The server room alarm fired during tics [10, 20].
	serverRoom := cell(10, 9)
	q := pnn.AtState(net, serverRoom)
	fmt.Printf("alarm at server room (cell %d) during tics [10, 20]\n\n", serverRoom)

	exists, stats, err := proc.ExistsNN(q, 10, 20, 0.05, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("people possibly closest at some moment (p ≥ 0.05; %d influencers):\n", stats.Influencers)
	for _, r := range exists {
		fmt.Printf("  person %d  p=%.3f\n", r.ObjectID, r.Prob)
	}

	forAll, _, err := proc.ForAllNN(q, 10, 20, 0.05, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npeople probably closest the whole time (p ≥ 0.05):")
	if len(forAll) == 0 {
		fmt.Println("  none")
	}
	for _, r := range forAll {
		fmt.Printf("  person %d  p=%.3f\n", r.ObjectID, r.Prob)
	}

	phases, _, err := proc.ContinuousNN(q, 10, 20, 0.25, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-person phases of proximity (PCNN, p ≥ 0.25):")
	for _, r := range phases {
		fmt.Printf("  person %d  tics %v  p=%.3f\n", r.ObjectID, r.Times, r.Prob)
	}

	// Audit detail: one concrete possibility for person 2's path.
	traj, err := proc.SampleTrajectory(2, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none possible path of person 2 (first 10 cells): %v\n", traj[:10])
}
