// Command geosocial models the paper's geo-social-network scenario: users
// publish occasional check-ins, and for a historical event (a concert) one
// user wants to know which friends were probably nearest to them during
// the event — e.g. to share photos. Check-ins are sparse, so positions
// between them are uncertain; the "k nearest friends" variant uses the
// kNN extension of Section 8.
package main

import (
	"fmt"
	"log"

	"pnn"
)

func main() {
	// The city is a synthetic network; check-ins are tied to venues
	// (network states).
	net, err := pnn.NewSyntheticNetwork(8000, 8, 7)
	if err != nil {
		log.Fatal(err)
	}

	// The user attended a concert at tics 40-60 at a fixed venue.
	venue := net.NearestState(pnn.Point{X: 0.55, Y: 0.45})
	vp := net.StatePoint(venue)

	// Friends with sparse check-ins around town. Tics are ~10 minutes:
	// friends check in every hour or two.
	db := pnn.NewDB(net)
	state := func(x, y float64) int { return net.NearestState(pnn.Point{X: x, Y: y}) }
	// loiter fabricates periodic check-ins at a fixed venue — always
	// consistent because the motion model allows idling.
	loiter := func(s, t0, t1, every int) []pnn.Observation {
		var obs []pnn.Observation
		for t := t0; t <= t1; t += every {
			obs = append(obs, pnn.Observation{T: t, State: s})
		}
		return obs
	}
	friends := map[int][]pnn.Observation{
		// Ana spent the evening at a bar next to the venue.
		1: loiter(state(vp.X+0.012, vp.Y), 0, 80, 20),
		// Bo started far away and drifted toward the venue along streets.
		2: net.ObservationsAlong(state(vp.X+0.25, vp.Y+0.2), state(vp.X+0.03, vp.Y), 0, 3, 5),
		// Cem stayed across town.
		3: loiter(state(vp.X-0.4, vp.Y-0.3), 0, 80, 20),
		// Dee only appeared after the concert.
		4: loiter(state(vp.X, vp.Y), 62, 80, 18),
	}
	names := map[int]string{1: "ana", 2: "bo", 3: "cem", 4: "dee"}
	for id, obs := range friends {
		if len(obs) == 0 {
			log.Fatalf("friend %d: no path between check-in venues", id)
		}
		if err := db.Add(id, obs); err != nil {
			log.Fatal(err)
		}
	}
	proc, err := db.Build(8000)
	if err != nil {
		log.Fatal(err)
	}
	q := pnn.AtState(net, venue)

	fmt.Printf("concert at state %d during tics [40, 60]\n\n", venue)
	res, _, err := proc.ExistsNN(q, 40, 60, 0.05, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("friends probably nearest at some point (p ≥ 0.05):")
	for _, r := range res {
		fmt.Printf("  %-4s p=%.3f\n", names[r.ObjectID], r.Prob)
	}

	all, _, err := proc.ForAllNN(q, 40, 60, 0.05, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfriends probably nearest the whole time (p ≥ 0.05):")
	if len(all) == 0 {
		fmt.Println("  none")
	}
	for _, r := range all {
		fmt.Printf("  %-4s p=%.3f\n", names[r.ObjectID], r.Prob)
	}

	// "Were my two closest friends around?" — 2NN variant (Section 8).
	knn, _, err := proc.ExistsKNN(q, 40, 60, 2, 0.05, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfriends probably among the 2 nearest at some point (p ≥ 0.05):")
	for _, r := range knn {
		fmt.Printf("  %-4s p=%.3f\n", names[r.ObjectID], r.Prob)
	}
}
