// Command quickstart is the smallest end-to-end use of the pnn library:
// build a network, register two uncertain objects by their sparse
// observations, and ask which one was probably the nearest neighbor of a
// point throughout a time interval.
package main

import (
	"fmt"
	"log"

	"pnn"
)

func main() {
	// A synthetic motion network: 5 000 states, average branching 8.
	net, err := pnn.NewSyntheticNetwork(5000, 8, 42)
	if err != nil {
		log.Fatal(err)
	}

	// A query location somewhere in the middle of the map.
	qState := net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	qPoint := net.StatePoint(qState)

	// Two objects, each seen only three times over 20 tics. Between
	// observations their positions are uncertain.
	nearA := net.NearestState(pnn.Point{X: qPoint.X + 0.02, Y: qPoint.Y})
	nearB := net.NearestState(pnn.Point{X: qPoint.X + 0.03, Y: qPoint.Y + 0.02})
	farC := net.NearestState(pnn.Point{X: qPoint.X + 0.3, Y: qPoint.Y + 0.3})

	db := pnn.NewDB(net)
	must(db.Add(1, []pnn.Observation{{T: 0, State: nearA}, {T: 10, State: nearA}, {T: 20, State: nearA}}))
	must(db.Add(2, []pnn.Observation{{T: 0, State: nearB}, {T: 10, State: nearB}, {T: 20, State: nearB}}))
	must(db.Add(3, []pnn.Observation{{T: 0, State: farC}, {T: 10, State: farC}, {T: 20, State: farC}}))

	// Index the database and prepare the sampler (10 000 worlds/query).
	proc, err := db.Build(10000)
	if err != nil {
		log.Fatal(err)
	}
	eps := pnn.SampleBound(10000, 0.05)
	fmt.Printf("estimates accurate to ±%.3f with 95%% confidence\n\n", eps)

	q := pnn.AtState(net, qState)

	forAll, stats, err := proc.ForAllNN(q, 2, 18, 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P∀NN over [2,18] (τ=0.05): %d candidates, %d influencers\n",
		stats.Candidates, stats.Influencers)
	for _, r := range forAll {
		fmt.Printf("  object %d always nearest with p=%.3f\n", r.ObjectID, r.Prob)
	}

	exists, _, err := proc.ExistsNN(q, 2, 18, 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P∃NN over [2,18] (τ=0.05):\n")
	for _, r := range exists {
		fmt.Printf("  object %d nearest at some time with p=%.3f\n", r.ObjectID, r.Prob)
	}

	// One possible world for object 2, consistent with every observation.
	traj, err := proc.SampleTrajectory(2, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\na possible trajectory of object 2 (states): %v...\n", traj[:8])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
