// Command taxiwitness reproduces the paper's running application (Section
// 1): a bank robbery happened during a known time window, and investigators
// want the GPS-tracked taxis that were probably closest to the bank — the
// potential witnesses. P∀NNQ finds taxis likely to have watched the whole
// scene; P∃NNQ finds anyone who may have passed closest at least once;
// PCNNQ groups witnesses by the phases of the incident they covered.
package main

import (
	"fmt"
	"log"

	"pnn"
)

func main() {
	// A simulated city: dense center, 4 000 road nodes, 300 taxis whose
	// GPS traces are only stored every 8 tics.
	net, db, err := pnn.TaxiDataset(4000, 300, 100, 300, 8, 2024)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := db.Build(5000)
	if err != nil {
		log.Fatal(err)
	}

	// The bank sits near the city center; the robbery lasted tics 120-135.
	bank := net.NearestState(pnn.Point{X: 0.52, Y: 0.49})
	const robberyStart, robberyEnd = 120, 135
	q := pnn.AtState(net, bank)

	fmt.Printf("bank at state %d %v, robbery during [%d, %d]\n\n",
		bank, net.StatePoint(bank), robberyStart, robberyEnd)

	// Who might have seen anything at all? (P∃NNQ, τ = 0.1)
	witnesses, stats, err := proc.ExistsNN(q, robberyStart, robberyEnd, 0.10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("possible witnesses (closest taxi at some moment, p ≥ 0.1):\n")
	fmt.Printf("  filter step: %d candidates, %d influencers out of %d taxis\n",
		stats.Candidates, stats.Influencers, db.Len())
	for _, r := range witnesses {
		fmt.Printf("  taxi %3d  p=%.3f\n", r.ObjectID, r.Prob)
	}

	// Who likely watched the entire robbery? (P∀NNQ, τ = 0.1)
	full, _, err := proc.ForAllNN(q, robberyStart, robberyEnd, 0.10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprime witnesses (closest during the whole robbery, p ≥ 0.1):\n")
	if len(full) == 0 {
		fmt.Println("  none — no single taxi dominated the whole window")
	}
	for _, r := range full {
		fmt.Printf("  taxi %3d  p=%.3f\n", r.ObjectID, r.Prob)
	}

	// Which phases did each witness cover? (PCNNQ, τ = 0.2)
	phases, _, err := proc.ContinuousNN(q, robberyStart, robberyEnd, 0.2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwitness phases (maximal timestamp sets, p ≥ 0.2):\n")
	for _, r := range phases {
		fmt.Printf("  taxi %3d  tics %v  p=%.3f\n", r.ObjectID, r.Times, r.Prob)
	}

	// The robbers escaped by car: a moving query tracks their route and
	// asks which taxis trailed closest to it (potential pursuit footage).
	route := []pnn.Point{}
	p0 := net.StatePoint(bank)
	for i := 0; i < 10; i++ {
		route = append(route, pnn.Point{X: p0.X + 0.02*float64(i), Y: p0.Y + 0.01*float64(i)})
	}
	chase, _, err := proc.ExistsNN(pnn.Moving(robberyEnd, route), robberyEnd, robberyEnd+9, 0.15, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntaxis near the escape route (p ≥ 0.15):\n")
	for _, r := range chase {
		fmt.Printf("  taxi %3d  p=%.3f\n", r.ObjectID, r.Prob)
	}
}
