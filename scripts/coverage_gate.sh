#!/usr/bin/env sh
# coverage_gate.sh PROFILE FLOOR
#
# Per-package coverage gate over a Go cover profile: aggregates covered
# statements per package and fails when any package is below FLOOR
# percent. Reporting per package (rather than only the combined total)
# stops a well-tested large package from masking an untested small one.
#
# The profile concatenates the blocks of every test binary that ran with
# -coverpkg, so the same source block can appear many times; blocks are
# deduplicated by file:range, counting a block covered when any run hit
# it.
set -eu

profile=${1:?usage: coverage_gate.sh PROFILE FLOOR}
floor=${2:?usage: coverage_gate.sh PROFILE FLOOR}

awk -v floor="$floor" '
NR > 1 {
    key = $1
    stmts[key] = $2
    if ($3 > 0) hit[key] = 1
}
END {
    for (k in stmts) {
        split(k, a, ":"); path = a[1]
        n = split(path, b, "/")
        pkg = ""
        for (i = 1; i < n; i++) pkg = pkg (i > 1 ? "/" : "") b[i]
        total[pkg] += stmts[k]
        if (hit[k]) cov[pkg] += stmts[k]
    }
    # Sort package names (insertion sort: portable awk, tiny n) so the
    # report is deterministic across runs.
    n = 0
    for (p in total) names[n++] = p
    for (i = 1; i < n; i++)
        for (j = i; j > 0 && names[j] < names[j-1]; j--) {
            tmp = names[j]; names[j] = names[j-1]; names[j-1] = tmp
        }
    fail = 0
    for (i = 0; i < n; i++) {
        p = names[i]
        pct = 100 * cov[p] / total[p]
        status = "ok"
        if (pct < floor) { status = "BELOW FLOOR"; fail = 1 }
        printf "%-40s %6.1f%%  (%d/%d statements)  %s\n", p, pct, cov[p], total[p], status
    }
    if (fail) {
        printf "coverage gate: at least one package is below the %s%% floor\n", floor > "/dev/stderr"
        exit 1
    }
}' "$profile"
