#!/usr/bin/env sh
# coverage_gate.sh PROFILE FLOOR [PKG=FLOOR ...]
#
# Per-package coverage gate over a Go cover profile: aggregates covered
# statements per package and fails when any package is below FLOOR
# percent. Reporting per package (rather than only the combined total)
# stops a well-tested large package from masking an untested small one.
#
# Extra PKG=FLOOR arguments raise (or lower) the floor for individual
# packages — matched exactly or by suffix against the import path, so
# "internal/sub=90" covers "pnn/internal/sub". The subscription
# registry carries the shared-world fanout and sweep-batching
# correctness surface, hence its higher floor in CI.
#
# The profile concatenates the blocks of every test binary that ran with
# -coverpkg, so the same source block can appear many times; blocks are
# deduplicated by file:range, counting a block covered when any run hit
# it.
set -eu

profile=${1:?usage: coverage_gate.sh PROFILE FLOOR [PKG=FLOOR ...]}
floor=${2:?usage: coverage_gate.sh PROFILE FLOOR [PKG=FLOOR ...]}
shift 2
overrides="$*"

awk -v floor="$floor" -v overrides="$overrides" '
NR > 1 {
    key = $1
    stmts[key] = $2
    if ($3 > 0) hit[key] = 1
}
END {
    nov = split(overrides, ovs, " ")
    for (i = 1; i <= nov; i++) {
        if (split(ovs[i], kv, "=") == 2) ovfloor[kv[1]] = kv[2] + 0
    }
    for (k in stmts) {
        split(k, a, ":"); path = a[1]
        n = split(path, b, "/")
        pkg = ""
        for (i = 1; i < n; i++) pkg = pkg (i > 1 ? "/" : "") b[i]
        total[pkg] += stmts[k]
        if (hit[k]) cov[pkg] += stmts[k]
    }
    # Sort package names (insertion sort: portable awk, tiny n) so the
    # report is deterministic across runs.
    n = 0
    for (p in total) names[n++] = p
    for (i = 1; i < n; i++)
        for (j = i; j > 0 && names[j] < names[j-1]; j--) {
            tmp = names[j]; names[j] = names[j-1]; names[j-1] = tmp
        }
    fail = 0
    for (i = 0; i < n; i++) {
        p = names[i]
        pct = 100 * cov[p] / total[p]
        pfloor = floor
        for (o in ovfloor)
            if (p == o || substr(p, length(p) - length(o)) == "/" o)
                pfloor = ovfloor[o]
        status = "ok"
        if (pfloor != floor) status = sprintf("ok (floor %g%%)", pfloor)
        if (pct < pfloor) { status = sprintf("BELOW %g%% FLOOR", pfloor); fail = 1 }
        printf "%-40s %6.1f%%  (%d/%d statements)  %s\n", p, pct, cov[p], total[p], status
    }
    if (fail) {
        print "coverage gate: at least one package is below its floor" > "/dev/stderr"
        exit 1
    }
}' "$profile"
